"""The paper's four real-world findings (Section VII.B), re-created.

SEPAR's market study surfaced previously unknown vulnerabilities in real
apps; the paper discloses four it reported to the developers.  Each is
rebuilt here from its published description:

- **Barcoder** (Activity/Service launch): a barcode scanner that pays
  bills over SMS; its ``InquiryActivity`` "exposes an unprotected Intent
  Filter that can be exploited by a malicious app for making an
  unauthorized payment".
- **Hesabdar** (Intent hijack): a personal accounting app; "one of its
  components handles user account information and sends the information as
  payload of an implicit Intent to another component".
- **OwnCloud** (information leakage): a file-sync client; "one of its
  components obtains the account information and through a chain of Intent
  message passing, eventually logs the account information in an
  unprotected area of the memory card".
- **Ermete SMS** (privilege escalation): a texting app with WRITE_SMS;
  "upon receiving an Intent, its ComposeActivity extracts the payload ...
  and sends it via text message ... without checking the permission of the
  sender".
"""

from __future__ import annotations

from typing import List

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import CATEGORY_DEFAULT, IntentFilter
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.dex import DexClass, DexProgram, MethodBuilder

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE


def build_barcoder() -> Apk:
    """Barcode scanner paying bills via SMS; InquiryActivity is openly
    launchable with attacker-controlled bill details."""
    scanner = DexClass(
        "ScannerActivity",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .invoke("Camera.takePicture", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", "ir.barcoder/InquiryActivity")
            .invoke("Intent.setClassName", receiver="v0", args=("v1",))
            .const_string("v2", "billInfo")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.startActivity", args=("v0",))
            .ret()
            .build()
        ],
    )
    inquiry = DexClass(
        "InquiryActivity",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .const_string("v1", "billInfo")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
            # The stored bank account funds the payment.
            .iget("v3", "this", "bankAccount")
            .invoke("SmsManager.getDefault", dest="v4")
            .const_string("v5", "bank-short-code")
            .invoke(
                "SmsManager.sendTextMessage",
                receiver="v4",
                args=("v5", "v5", "v2", "v5", "v5"),
            )
            .ret()
            .build()
        ],
    )
    return Apk(
        Manifest(
            package="ir.barcoder",
            uses_permissions=frozenset({perms.SEND_SMS, perms.CAMERA}),
            components=[
                ComponentDecl("ScannerActivity", A, exported=True),
                ComponentDecl(
                    "InquiryActivity",
                    A,
                    # The published defect: an unprotected Intent Filter
                    # (DEFAULT declared, as real manifests do, so implicit
                    # startActivity Intents resolve to it).
                    intent_filters=[
                        IntentFilter(
                            actions=frozenset({"ir.barcoder.PAY_BILL"}),
                            categories=frozenset({CATEGORY_DEFAULT}),
                        )
                    ],
                ),
            ],
        ),
        DexProgram([scanner, inquiry]),
        repository="bazaar",
    )


def build_hesabdar() -> Apk:
    """Accounting app broadcasting account data under an implicit Intent."""
    accounts = DexClass(
        "AccountManagerActivity",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .invoke("AccountManager.getAccounts", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", "ir.hesabdar.SHOW_TRANSACTIONS")
            .invoke("Intent.setAction", receiver="v0", args=("v1",))
            .const_string("v2", "accountInfo")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.startActivity", args=("v0",))
            .ret()
            .build()
        ],
    )
    report = DexClass(
        "TransactionReportActivity",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .const_string("v1", "accountInfo")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
            .ret()
            .build()
        ],
    )
    return Apk(
        Manifest(
            package="ir.hesabdar",
            uses_permissions=frozenset({perms.GET_ACCOUNTS}),
            components=[
                ComponentDecl("AccountManagerActivity", A, exported=True),
                ComponentDecl(
                    "TransactionReportActivity",
                    A,
                    intent_filters=[
                        IntentFilter(
                            actions=frozenset({"ir.hesabdar.SHOW_TRANSACTIONS"}),
                            categories=frozenset({CATEGORY_DEFAULT}),
                        )
                    ],
                ),
            ],
        ),
        DexProgram([accounts, report]),
        repository="bazaar",
    )


def build_owncloud() -> Apk:
    """File-sync client logging account credentials to the SD card through
    a chain of Intent passing."""
    auth = DexClass(
        "AuthenticatorActivity",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .invoke("AccountManager.getAccounts", receiver="v9", dest="v8")
            .new_instance("v0", "Intent")
            .const_string("v1", "com.owncloud.android/FileSyncService")
            .invoke("Intent.setClassName", receiver="v0", args=("v1",))
            .const_string("v2", "account")
            .invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
            .invoke("Context.startService", args=("v0",))
            .ret()
            .build()
        ],
    )
    sync = DexClass(
        "FileSyncService",
        superclass="Service",
        methods=[
            # First hop: relay onward with the credentials still aboard.
            MethodBuilder("onStartCommand", params=("p0",))
            .const_string("v1", "account")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
            .new_instance("v0", "Intent")
            .const_string("v3", "com.owncloud.android/LoggerService")
            .invoke("Intent.setClassName", receiver="v0", args=("v3",))
            .invoke("Intent.putExtra", receiver="v0", args=("v1", "v2"))
            .invoke("Context.startService", args=("v0",))
            .ret()
            .build()
        ],
    )
    logger = DexClass(
        "LoggerService",
        superclass="Service",
        methods=[
            MethodBuilder("onStartCommand", params=("p0",))
            .const_string("v1", "account")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
            .const_string("v3", "/sdcard/owncloud/log.txt")
            .invoke("ExternalStorage.writeFile", args=("v3", "v2"))
            .ret()
            .build()
        ],
    )
    return Apk(
        Manifest(
            package="com.owncloud.android",
            uses_permissions=frozenset(
                {perms.GET_ACCOUNTS, perms.INTERNET, perms.WRITE_EXTERNAL_STORAGE}
            ),
            components=[
                ComponentDecl("AuthenticatorActivity", A, exported=True),
                ComponentDecl("FileSyncService", S, exported=True),
                ComponentDecl("LoggerService", S, exported=True),
            ],
        ),
        DexProgram([auth, sync, logger]),
        repository="f_droid",
    )


def build_ermete_sms() -> Apk:
    """Texting app whose ComposeActivity texts any payload for any caller,
    handing WRITE_SMS/SEND_SMS to permission-less apps."""
    compose = DexClass(
        "ComposeActivity",
        superclass="Activity",
        methods=[
            MethodBuilder("onCreate", params=("p0",))
            .const_string("v1", "number")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
            .const_string("v3", "body")
            .invoke("Intent.getStringExtra", receiver="p0", args=("v3",), dest="v4")
            .invoke("SmsManager.getDefault", dest="v5")
            .invoke(
                "SmsManager.sendTextMessage",
                receiver="v5",
                args=("v2", "v2", "v4", "v2", "v2"),
            )
            .ret()
            .build()
        ],
    )
    return Apk(
        Manifest(
            package="org.ermete.sms",
            uses_permissions=frozenset({perms.SEND_SMS, perms.WRITE_SMS}),
            components=[ComponentDecl("ComposeActivity", A, exported=True)],
        ),
        DexProgram([compose]),
        repository="google_play",
    )


def market_findings_bundle() -> List[Apk]:
    """All four finding apps, jointly installed."""
    return [
        build_barcoder(),
        build_hesabdar(),
        build_owncloud(),
        build_ermete_sms(),
    ]
