"""Scoring: per-case TP/FP/FN and aggregate precision/recall/F-measure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.benchsuite.groundtruth import BenchmarkCase, LeakPair


@dataclass
class CaseScore:
    case: str
    suite: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def symbols(self) -> str:
        """Table-I-style cell: filled squares TP, triangles FP, empty FN."""
        return (
            "■" * self.true_positives
            + "△" * self.false_positives
            + "□" * self.false_negatives
        ) or "-"


@dataclass
class ToolScore:
    tool: str
    cases: List[CaseScore] = field(default_factory=list)

    @property
    def true_positives(self) -> int:
        return sum(c.true_positives for c in self.cases)

    @property
    def false_positives(self) -> int:
        return sum(c.false_positives for c in self.cases)

    @property
    def false_negatives(self) -> int:
        return sum(c.false_negatives for c in self.cases)

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f_measure(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_case(
    case: BenchmarkCase, reported: Iterable[LeakPair]
) -> CaseScore:
    reported_set = set(reported)
    tp = len(reported_set & case.expected)
    fp = len(reported_set - case.expected)
    fn = len(case.expected - reported_set)
    return CaseScore(
        case=case.name,
        suite=case.suite,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def score_tool(
    tool_name: str,
    cases: List[BenchmarkCase],
    results: Dict[str, Set[LeakPair]],
) -> ToolScore:
    """``results`` maps case name -> reported leak pairs."""
    score = ToolScore(tool=tool_name)
    for case in cases:
        score.cases.append(score_case(case, results.get(case.name, set())))
    return score
