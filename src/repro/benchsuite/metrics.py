"""Scoring: per-case TP/FP/FN and aggregate precision/recall/F-measure,
plus pipeline run-report summarization for the performance benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Set

from repro.benchsuite.groundtruth import BenchmarkCase, LeakPair


@dataclass
class CaseScore:
    case: str
    suite: str
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def symbols(self) -> str:
        """Table-I-style cell: filled squares TP, triangles FP, empty FN."""
        return (
            "■" * self.true_positives
            + "△" * self.false_positives
            + "□" * self.false_negatives
        ) or "-"


@dataclass
class ToolScore:
    tool: str
    cases: List[CaseScore] = field(default_factory=list)

    @property
    def true_positives(self) -> int:
        return sum(c.true_positives for c in self.cases)

    @property
    def false_positives(self) -> int:
        return sum(c.false_positives for c in self.cases)

    @property
    def false_negatives(self) -> int:
        return sum(c.false_negatives for c in self.cases)

    @property
    def precision(self) -> float:
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0

    @property
    def recall(self) -> float:
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f_measure(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_case(
    case: BenchmarkCase, reported: Iterable[LeakPair]
) -> CaseScore:
    reported_set = set(reported)
    tp = len(reported_set & case.expected)
    fp = len(reported_set - case.expected)
    fn = len(case.expected - reported_set)
    return CaseScore(
        case=case.name,
        suite=case.suite,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


def score_tool(
    tool_name: str,
    cases: List[BenchmarkCase],
    results: Dict[str, Set[LeakPair]],
) -> ToolScore:
    """``results`` maps case name -> reported leak pairs."""
    score = ToolScore(tool=tool_name)
    for case in cases:
        score.cases.append(score_case(case, results.get(case.name, set())))
    return score


def summarize_run_report(report: Any) -> Dict[str, float]:
    """Flatten a pipeline :class:`~repro.pipeline.stats.RunReport` (or its
    dict form) into the key figures the Table 2 / Fig 5 benchmark tables
    print: per-stage wall time, the construction/solving split, cache hit
    rate, CDCL solver effort, and shared-encoding reuse (translations
    performed vs avoided, base clauses warm queries reused)."""
    data = report.to_dict() if hasattr(report, "to_dict") else dict(report)
    cache = data.get("cache", {})
    solver = data.get("solver", {})
    hits = cache.get("total_hits", 0)
    misses = cache.get("total_misses", 0)
    lookups = hits + misses
    summary: Dict[str, float] = {
        "jobs": float(data.get("jobs", 1)),
        "num_apps": float(data.get("num_apps", 0)),
        "num_bundles": float(data.get("num_bundles", 0)),
        "num_scenarios": float(data.get("num_scenarios", 0)),
        "num_policies": float(data.get("num_policies", 0)),
        "total_seconds": float(data.get("total_seconds", 0.0)),
        "construction_seconds": float(data.get("construction_seconds", 0.0)),
        "solving_seconds": float(data.get("solving_seconds", 0.0)),
        "cache_hits": float(hits),
        "cache_misses": float(misses),
        "cache_invalidations": float(cache.get("total_invalidations", 0)),
        "cache_hit_rate": (hits / lookups) if lookups else 0.0,
        "solver_calls": float(solver.get("solver_calls", 0)),
        "conflicts": float(solver.get("conflicts", 0)),
        "decisions": float(solver.get("decisions", 0)),
        "propagations": float(solver.get("propagations", 0)),
        "num_clauses": float(solver.get("num_clauses", 0)),
        "translations": float(solver.get("translations", 0)),
        "translations_avoided": float(
            solver.get("translations_avoided", 0)
        ),
        "clauses_shared": float(solver.get("clauses_shared", 0)),
        "learned_carried": float(solver.get("learned_carried", 0)),
        "num_failures": float(len(data.get("failures", ()))),
        "num_degraded": float(len(data.get("degraded", ()))),
    }
    for stage in data.get("stages", ()):
        summary[f"stage_{stage['name']}_seconds"] = float(stage["seconds"])
    return summary
