"""The parallel, cached analysis/synthesis pipeline.

Extraction is fanned out across apps and synthesis across
(bundle, vulnerability-signature) pairs -- the two embarrassingly parallel
axes of SEPAR's workload (per-app facts are independent until composition;
signatures never share solver state).  Results flow through the
content-addressed :class:`~repro.pipeline.cache.PipelineCache`, so a rerun
over unchanged inputs skips extraction and SAT solving entirely.

Determinism: workers communicate via the canonical JSON forms in
``repro.core.serialize`` and results are reassembled in (bundle, signature)
index order, so serial (``jobs=1``) and parallel runs produce byte-identical
findings and policies.  Signatures are addressed by registry name
(``repro.core.vulnerabilities.lookup``) to stay picklable.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.android.apk import Apk
from repro.core import serialize
from repro.core.detector import DetectionReport
from repro.core.model import AppModel, BundleModel
from repro.core.separ import Separ, SeparReport
from repro.core.synthesis import (
    AnalysisAndSynthesisEngine,
    SynthesisResult,
    SynthesisStats,
)
from repro.core.vulnerabilities import default_signatures, lookup
from repro.obs import aggregate_spans, get_metrics, get_tracer, read_trace
from repro.pipeline.cache import (
    NullCache,
    PipelineCache,
    content_hash,
    framework_fingerprint,
)
from repro.pipeline.stats import RunReport

T = TypeVar("T")
R = TypeVar("R")


# ----------------------------------------------------------------------
# Worker functions: module-level (picklable), plain-data in and out.

def _extract_worker(task: Tuple[Any, bool]) -> Dict[str, Any]:
    from repro.statics import extract_app

    apk, handle_dynamic_receivers = task
    # Spans emitted here land in the shared REPRO_TRACE file whether this
    # runs in the parent (serial path) or in a pool worker (the env var and
    # the O_APPEND descriptor discipline make the file multi-process safe).
    with get_tracer().span("pipeline.extract_app", package=apk.package):
        model = extract_app(
            apk, handle_dynamic_receivers=handle_dynamic_receivers
        )
    return serialize.app_to_dict(model)


def _synthesis_worker(task: Dict[str, Any]) -> Dict[str, Any]:
    with get_tracer().span(
        "pipeline.synthesize",
        signature=task["signature"],
        apps=len(task["apps"]),
    ):
        bundle = BundleModel(
            apps=[serialize.app_from_dict(a) for a in task["apps"]]
        )
        signature = lookup(task["signature"])()
        engine = AnalysisAndSynthesisEngine(
            signatures=[signature],
            scenarios_per_signature=task["scenarios_per_signature"],
            minimal=task["minimal"],
        )
        result = engine.run_signature(bundle, signature)
    return {
        "scenarios": [
            serialize.scenario_to_dict(s) for s in result.scenarios
        ],
        "stats": result.stats.to_dict(),
    }


def _with_metrics_delta(fn: Callable[[T], R], task: T) -> Tuple[R, Any]:
    """Run ``fn`` in a pool worker and capture its per-task metrics delta.

    The worker's registry is reset before the task (a forked worker
    inherits the parent's counts; a reused worker carries the previous
    task's), so the returned snapshot is exactly what this task added.
    The parent merges it -- only on the parallel path, where in-process
    increments never happened.
    """
    metrics = get_metrics()
    if not metrics.enabled:
        return fn(task), None
    metrics.reset()
    payload = fn(task)
    return payload, metrics.snapshot()


def _extract_worker_obs(task: Tuple[Any, bool]) -> Tuple[Dict[str, Any], Any]:
    return _with_metrics_delta(_extract_worker, task)


def _synthesis_worker_obs(task: Dict[str, Any]) -> Tuple[Dict[str, Any], Any]:
    return _with_metrics_delta(_synthesis_worker, task)


# ----------------------------------------------------------------------

def attach_observability(
    report: RunReport, trace_path: Optional[str] = None
) -> RunReport:
    """Fold the active observability state into a run report.

    Copies the global metrics registry's snapshot into ``report.metrics``
    (when collection is enabled) and aggregates span records into
    ``report.spans`` -- from ``trace_path`` if given, else from the global
    tracer (in-memory records, or the JSONL file a :class:`JsonlTracer`
    appends to, which also contains the worker processes' spans).
    No-op on both fields when observability is disabled.
    """
    metrics = get_metrics()
    if metrics.enabled:
        report.metrics = metrics.snapshot()
    records = None
    if trace_path is not None:
        records = read_trace(trace_path)
    else:
        tracer = get_tracer()
        if getattr(tracer, "records", None) is not None:
            records = list(tracer.records)
        elif getattr(tracer, "path", None):
            records = read_trace(tracer.path)
    if records:
        report.spans = aggregate_spans(records)
    return report


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    reports: List[SeparReport]
    run_report: RunReport

    def findings_dict(self) -> Dict[str, Any]:
        """Canonical findings across all bundles (for files and diffing)."""
        return {
            "bundles": [
                {
                    "apps": sorted(a.package for a in report.bundle.apps),
                    "scenarios": [
                        serialize.scenario_to_dict(s)
                        for s in report.scenarios
                    ],
                    "policies": [
                        serialize.policy_to_dict(p) for p in report.policies
                    ],
                    "detection": report.detection.to_dict(),
                }
                for report in self.reports
            ],
        }


class AnalysisPipeline:
    """Fan-out + cache orchestration for multi-bundle SEPAR analysis.

    ``jobs <= 1`` runs everything serially in-process; higher values use a
    :class:`~concurrent.futures.ProcessPoolExecutor`, falling back to the
    serial path if worker processes cannot be spawned.  Both paths execute
    the same worker functions, so outputs are identical byte for byte.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[PipelineCache] = None,
        signature_names: Optional[Sequence[str]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
        handle_dynamic_receivers: bool = False,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache if cache is not None else NullCache()
        self.signature_names = (
            list(signature_names)
            if signature_names is not None
            else [s.name for s in default_signatures()]
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal
        self.handle_dynamic_receivers = handle_dynamic_receivers

    # ------------------------------------------------------------------
    def _map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        obs_fn: Optional[Callable[[T], Tuple[R, Any]]] = None,
    ) -> List[R]:
        """Order-preserving map, parallel when jobs > 1.

        On the parallel path, ``obs_fn`` (when given and metrics are on)
        replaces ``fn`` with a wrapper that also ships each task's metrics
        delta back for merging -- the serial path publishes into the
        parent's registry directly, so it uses plain ``fn``.
        """
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                metrics = get_metrics()
                if obs_fn is not None and metrics.enabled:
                    results: List[R] = []
                    for payload, delta in pool.map(obs_fn, items):
                        if delta:
                            metrics.merge(delta)
                        results.append(payload)
                    return results
                return list(pool.map(fn, items))
        except (OSError, ValueError, RuntimeError):
            # No process support (restricted environments): serial fallback.
            return [fn(item) for item in items]

    def _engine_params(self) -> Dict[str, Any]:
        return {
            "scenarios_per_signature": self.scenarios_per_signature,
            "minimal": self.minimal,
        }

    @staticmethod
    def _app_content_key(app_dict: Dict[str, Any]) -> str:
        """Hash of an app's *analysis-relevant* content.

        ``extraction_seconds`` is a wall-clock measurement that changes on
        every fresh extraction; hashing it would give re-extracted apps new
        synthesis keys and spuriously miss otherwise-valid cache entries.
        """
        return content_hash(
            {k: v for k, v in app_dict.items() if k != "extraction_seconds"}
        )

    # ------------------------------------------------------------------
    def extract_apps(
        self, apks: Sequence[Apk], report: Optional[RunReport] = None
    ) -> List[AppModel]:
        """Extract app models, fanning cache misses out across processes."""
        start = time.perf_counter()
        with get_tracer().span("pipeline.extract", apps=len(apks)) as stage:
            fingerprint = framework_fingerprint()
            keys = [
                content_hash(
                    {
                        "task": "extract",
                        "apk": apk,
                        "handle_dynamic_receivers": self.handle_dynamic_receivers,
                        "fingerprint": fingerprint,
                    }
                )
                for apk in apks
            ]
            dicts: List[Optional[Dict[str, Any]]] = [
                self.cache.get("extract", key) for key in keys
            ]
            miss_indices = [i for i, d in enumerate(dicts) if d is None]
            stage.set(cache_misses=len(miss_indices))
            extracted = self._map(
                _extract_worker,
                [
                    (apks[i], self.handle_dynamic_receivers)
                    for i in miss_indices
                ],
                obs_fn=_extract_worker_obs,
            )
            for index, app_dict in zip(miss_indices, extracted):
                self.cache.put("extract", keys[index], app_dict)
                dicts[index] = app_dict
            models = [serialize.app_from_dict(d) for d in dicts]
        if report is not None:
            report.add_stage("extract", time.perf_counter() - start)
            report.num_apps += len(models)
            report.cache = self.cache.accounting
        return models

    # ------------------------------------------------------------------
    def run(self, bundles: Sequence[Sequence[Apk]]) -> PipelineResult:
        """Analyze every bundle: extraction, synthesis, policies, detection."""
        run_report = RunReport(jobs=self.jobs)
        with get_tracer().span(
            "pipeline.run", jobs=self.jobs, bundles=len(bundles)
        ):
            all_apks = [apk for bundle in bundles for apk in bundle]
            models = self.extract_apps(all_apks, report=run_report)
            bundle_models: List[BundleModel] = []
            cursor = 0
            for bundle in bundles:
                size = len(bundle)
                bundle_models.append(
                    BundleModel(apps=models[cursor:cursor + size])
                )
                cursor += size
            result = self.analyze_bundles(bundle_models, run_report=run_report)
        return result

    def analyze_bundles(
        self,
        bundle_models: Sequence[BundleModel],
        run_report: Optional[RunReport] = None,
    ) -> PipelineResult:
        """Synthesis + policy derivation + detection over extracted bundles."""
        run_report = run_report if run_report is not None else RunReport(jobs=self.jobs)
        run_report.num_bundles += len(bundle_models)
        tracer = get_tracer()
        fingerprint = framework_fingerprint()
        params = self._engine_params()

        start = time.perf_counter()
        with tracer.span(
            "pipeline.synthesis", bundles=len(bundle_models)
        ) as stage:
            bundle_apps: List[List[Dict[str, Any]]] = [
                [serialize.app_to_dict(a) for a in bundle.apps]
                for bundle in bundle_models
            ]
            app_hashes = [
                sorted(self._app_content_key(d) for d in apps)
                for apps in bundle_apps
            ]
            tasks: List[Tuple[int, int]] = [
                (b, s)
                for b in range(len(bundle_models))
                for s in range(len(self.signature_names))
            ]
            keys = [
                content_hash(
                    {
                        "task": "synthesis",
                        "apps": app_hashes[b],
                        "signature": self.signature_names[s],
                        "params": params,
                        "fingerprint": fingerprint,
                    }
                )
                for b, s in tasks
            ]
            cached: List[Optional[Dict[str, Any]]] = [
                self.cache.get("synthesis", key) for key in keys
            ]
            miss_indices = [i for i, c in enumerate(cached) if c is None]
            stage.set(tasks=len(tasks), cache_misses=len(miss_indices))
            solved = self._map(
                _synthesis_worker,
                [
                    {
                        "apps": bundle_apps[tasks[i][0]],
                        "signature": self.signature_names[tasks[i][1]],
                        **params,
                    }
                    for i in miss_indices
                ],
                obs_fn=_synthesis_worker_obs,
            )
            for index, payload in zip(miss_indices, solved):
                self.cache.put("synthesis", keys[index], payload)
                cached[index] = payload
        run_report.add_stage("synthesis", time.perf_counter() - start)

        # Reassemble in (bundle, signature) index order: exactly the order
        # the serial engine would have produced.
        start = time.perf_counter()
        reports: List[SeparReport] = []
        with tracer.span("pipeline.assemble", bundles=len(bundle_models)):
            for b, bundle in enumerate(bundle_models):
                scenarios = []
                stats = SynthesisStats()
                for i, (tb, _ts) in enumerate(tasks):
                    if tb != b:
                        continue
                    payload = cached[i]
                    scenarios.extend(
                        serialize.scenario_from_dict(s)
                        for s in payload["scenarios"]
                    )
                    stats.merge(SynthesisStats.from_dict(payload["stats"]))
                result = SynthesisResult(scenarios=scenarios, stats=stats)
                report = Separ.assemble_report(bundle, result)
                reports.append(report)
                run_report.solver.add_synthesis_stats(stats)
                run_report.construction_seconds += stats.construction_seconds
                run_report.solving_seconds += stats.solving_seconds
                run_report.num_scenarios += len(report.scenarios)
                run_report.num_policies += len(report.policies)
                run_report.per_bundle.append(
                    {
                        "apps": len(bundle.apps),
                        "scenarios": len(report.scenarios),
                        "policies": len(report.policies),
                        "conflicts": stats.conflicts,
                        "decisions": stats.decisions,
                        "propagations": stats.propagations,
                    }
                )
        run_report.add_stage("assemble", time.perf_counter() - start)
        run_report.cache = self.cache.accounting
        attach_observability(run_report)
        return PipelineResult(reports=reports, run_report=run_report)
