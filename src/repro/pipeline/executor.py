"""The parallel, cached analysis/synthesis pipeline.

Extraction is fanned out across apps and synthesis across
(bundle, vulnerability-signature) pairs -- the two embarrassingly parallel
axes of SEPAR's workload (per-app facts are independent until composition;
signatures never share solver state).  Results flow through the
content-addressed :class:`~repro.pipeline.cache.PipelineCache`, so a rerun
over unchanged inputs skips extraction and SAT solving entirely.

Determinism: workers communicate via the canonical JSON forms in
``repro.core.serialize`` and results are reassembled in (bundle, signature)
index order, so serial (``jobs=1``) and parallel runs produce byte-identical
findings and policies.  Signatures are addressed by registry name
(``repro.core.vulnerabilities.lookup``) to stay picklable.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.android.apk import Apk
from repro.core import serialize
from repro.core.detector import DetectionReport
from repro.core.model import AppModel, BundleModel
from repro.core.separ import Separ, SeparReport
from repro.core.synthesis import (
    AnalysisAndSynthesisEngine,
    SynthesisResult,
    SynthesisStats,
)
from repro.core.vulnerabilities import default_signatures, lookup
from repro.pipeline.cache import (
    NullCache,
    PipelineCache,
    content_hash,
    framework_fingerprint,
)
from repro.pipeline.stats import RunReport

T = TypeVar("T")
R = TypeVar("R")


# ----------------------------------------------------------------------
# Worker functions: module-level (picklable), plain-data in and out.

def _extract_worker(task: Tuple[Any, bool]) -> Dict[str, Any]:
    from repro.statics import extract_app

    apk, handle_dynamic_receivers = task
    model = extract_app(apk, handle_dynamic_receivers=handle_dynamic_receivers)
    return serialize.app_to_dict(model)


def _synthesis_worker(task: Dict[str, Any]) -> Dict[str, Any]:
    bundle = BundleModel(
        apps=[serialize.app_from_dict(a) for a in task["apps"]]
    )
    signature = lookup(task["signature"])()
    engine = AnalysisAndSynthesisEngine(
        signatures=[signature],
        scenarios_per_signature=task["scenarios_per_signature"],
        minimal=task["minimal"],
    )
    result = engine.run_signature(bundle, signature)
    return {
        "scenarios": [
            serialize.scenario_to_dict(s) for s in result.scenarios
        ],
        "stats": result.stats.to_dict(),
    }


# ----------------------------------------------------------------------

@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    reports: List[SeparReport]
    run_report: RunReport

    def findings_dict(self) -> Dict[str, Any]:
        """Canonical findings across all bundles (for files and diffing)."""
        return {
            "bundles": [
                {
                    "apps": sorted(a.package for a in report.bundle.apps),
                    "scenarios": [
                        serialize.scenario_to_dict(s)
                        for s in report.scenarios
                    ],
                    "policies": [
                        serialize.policy_to_dict(p) for p in report.policies
                    ],
                    "detection": report.detection.to_dict(),
                }
                for report in self.reports
            ],
        }


class AnalysisPipeline:
    """Fan-out + cache orchestration for multi-bundle SEPAR analysis.

    ``jobs <= 1`` runs everything serially in-process; higher values use a
    :class:`~concurrent.futures.ProcessPoolExecutor`, falling back to the
    serial path if worker processes cannot be spawned.  Both paths execute
    the same worker functions, so outputs are identical byte for byte.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[PipelineCache] = None,
        signature_names: Optional[Sequence[str]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
        handle_dynamic_receivers: bool = False,
    ) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache if cache is not None else NullCache()
        self.signature_names = (
            list(signature_names)
            if signature_names is not None
            else [s.name for s in default_signatures()]
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal
        self.handle_dynamic_receivers = handle_dynamic_receivers

    # ------------------------------------------------------------------
    def _map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Order-preserving map, parallel when jobs > 1."""
        if self.jobs <= 1 or len(items) <= 1:
            return [fn(item) for item in items]
        try:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(fn, items))
        except (OSError, ValueError, RuntimeError):
            # No process support (restricted environments): serial fallback.
            return [fn(item) for item in items]

    def _engine_params(self) -> Dict[str, Any]:
        return {
            "scenarios_per_signature": self.scenarios_per_signature,
            "minimal": self.minimal,
        }

    @staticmethod
    def _app_content_key(app_dict: Dict[str, Any]) -> str:
        """Hash of an app's *analysis-relevant* content.

        ``extraction_seconds`` is a wall-clock measurement that changes on
        every fresh extraction; hashing it would give re-extracted apps new
        synthesis keys and spuriously miss otherwise-valid cache entries.
        """
        return content_hash(
            {k: v for k, v in app_dict.items() if k != "extraction_seconds"}
        )

    # ------------------------------------------------------------------
    def extract_apps(
        self, apks: Sequence[Apk], report: Optional[RunReport] = None
    ) -> List[AppModel]:
        """Extract app models, fanning cache misses out across processes."""
        start = time.perf_counter()
        fingerprint = framework_fingerprint()
        keys = [
            content_hash(
                {
                    "task": "extract",
                    "apk": apk,
                    "handle_dynamic_receivers": self.handle_dynamic_receivers,
                    "fingerprint": fingerprint,
                }
            )
            for apk in apks
        ]
        dicts: List[Optional[Dict[str, Any]]] = [
            self.cache.get("extract", key) for key in keys
        ]
        miss_indices = [i for i, d in enumerate(dicts) if d is None]
        extracted = self._map(
            _extract_worker,
            [(apks[i], self.handle_dynamic_receivers) for i in miss_indices],
        )
        for index, app_dict in zip(miss_indices, extracted):
            self.cache.put("extract", keys[index], app_dict)
            dicts[index] = app_dict
        models = [serialize.app_from_dict(d) for d in dicts]
        if report is not None:
            report.add_stage("extract", time.perf_counter() - start)
            report.num_apps += len(models)
            report.cache = self.cache.accounting
        return models

    # ------------------------------------------------------------------
    def run(self, bundles: Sequence[Sequence[Apk]]) -> PipelineResult:
        """Analyze every bundle: extraction, synthesis, policies, detection."""
        run_report = RunReport(jobs=self.jobs)
        all_apks = [apk for bundle in bundles for apk in bundle]
        models = self.extract_apps(all_apks, report=run_report)
        bundle_models: List[BundleModel] = []
        cursor = 0
        for bundle in bundles:
            size = len(bundle)
            bundle_models.append(
                BundleModel(apps=models[cursor:cursor + size])
            )
            cursor += size
        return self.analyze_bundles(bundle_models, run_report=run_report)

    def analyze_bundles(
        self,
        bundle_models: Sequence[BundleModel],
        run_report: Optional[RunReport] = None,
    ) -> PipelineResult:
        """Synthesis + policy derivation + detection over extracted bundles."""
        run_report = run_report if run_report is not None else RunReport(jobs=self.jobs)
        run_report.num_bundles += len(bundle_models)
        fingerprint = framework_fingerprint()
        params = self._engine_params()

        start = time.perf_counter()
        bundle_apps: List[List[Dict[str, Any]]] = [
            [serialize.app_to_dict(a) for a in bundle.apps]
            for bundle in bundle_models
        ]
        app_hashes = [
            sorted(self._app_content_key(d) for d in apps)
            for apps in bundle_apps
        ]
        tasks: List[Tuple[int, int]] = [
            (b, s)
            for b in range(len(bundle_models))
            for s in range(len(self.signature_names))
        ]
        keys = [
            content_hash(
                {
                    "task": "synthesis",
                    "apps": app_hashes[b],
                    "signature": self.signature_names[s],
                    "params": params,
                    "fingerprint": fingerprint,
                }
            )
            for b, s in tasks
        ]
        cached: List[Optional[Dict[str, Any]]] = [
            self.cache.get("synthesis", key) for key in keys
        ]
        miss_indices = [i for i, c in enumerate(cached) if c is None]
        solved = self._map(
            _synthesis_worker,
            [
                {
                    "apps": bundle_apps[tasks[i][0]],
                    "signature": self.signature_names[tasks[i][1]],
                    **params,
                }
                for i in miss_indices
            ],
        )
        for index, payload in zip(miss_indices, solved):
            self.cache.put("synthesis", keys[index], payload)
            cached[index] = payload
        run_report.add_stage("synthesis", time.perf_counter() - start)

        # Reassemble in (bundle, signature) index order: exactly the order
        # the serial engine would have produced.
        start = time.perf_counter()
        reports: List[SeparReport] = []
        for b, bundle in enumerate(bundle_models):
            scenarios = []
            stats = SynthesisStats()
            for i, (tb, _ts) in enumerate(tasks):
                if tb != b:
                    continue
                payload = cached[i]
                scenarios.extend(
                    serialize.scenario_from_dict(s)
                    for s in payload["scenarios"]
                )
                stats.merge(SynthesisStats.from_dict(payload["stats"]))
            result = SynthesisResult(scenarios=scenarios, stats=stats)
            report = Separ.assemble_report(bundle, result)
            reports.append(report)
            run_report.solver.add_synthesis_stats(stats)
            run_report.construction_seconds += stats.construction_seconds
            run_report.solving_seconds += stats.solving_seconds
            run_report.num_scenarios += len(report.scenarios)
            run_report.num_policies += len(report.policies)
            run_report.per_bundle.append(
                {
                    "apps": len(bundle.apps),
                    "scenarios": len(report.scenarios),
                    "policies": len(report.policies),
                    "conflicts": stats.conflicts,
                    "decisions": stats.decisions,
                    "propagations": stats.propagations,
                }
            )
        run_report.add_stage("assemble", time.perf_counter() - start)
        run_report.cache = self.cache.accounting
        return PipelineResult(reports=reports, run_report=run_report)
