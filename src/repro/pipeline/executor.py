"""The parallel, cached, fault-tolerant analysis/synthesis pipeline.

Extraction is fanned out across apps and synthesis across bundles (the
default shared-encoding mode: one task per bundle translates the framework
spec once and enumerates every signature under selector assumptions on one
warm solver) or across (bundle, vulnerability-signature) pairs
(``shared_encoding=False``: signatures never share solver state, giving
finer-grained parallelism at the cost of one full translation per
signature).  Results flow through the content-addressed
:class:`~repro.pipeline.cache.PipelineCache`, so a rerun over unchanged
inputs skips extraction and SAT solving entirely; the two modes use
disjoint cache keys but produce byte-identical findings.

Determinism: workers communicate via the canonical JSON forms in
``repro.core.serialize`` and results are reassembled in (bundle, signature)
index order, so serial (``jobs=1``) and parallel runs produce byte-identical
findings and policies.  Signatures are addressed by registry name
(``repro.core.vulnerabilities.lookup``) to stay picklable.

Fault tolerance: every task is dispatched individually (``submit`` +
futures) under a :class:`FaultPolicy` -- a configurable per-task timeout,
bounded retries with exponential backoff, and crash isolation.  A worker
crash (``BrokenProcessPool``) kills only that pool generation: completed
results and their already-merged metrics deltas are kept, unstarted tasks
are resubmitted at no attempt cost, and the tasks that were in flight are
re-run one at a time so a repeat crash is attributed to the task that
caused it.  A per-task timeout likewise kills only the generation: the
victims are charged an attempt, while healthy in-flight peers are
resubmitted for free.  A task that keeps failing becomes a structured
:class:`TaskFailure` in ``RunReport.failures`` instead of aborting the
run; a budget-exhausted synthesis degrades to a partial payload recorded
in ``RunReport.degraded`` (and is never cached).
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.android.apk import Apk
from repro.core import serialize
from repro.core.detector import DetectionReport
from repro.core.model import AppModel, BundleModel
from repro.core.separ import Separ, SeparReport
from repro.core.synthesis import (
    AnalysisAndSynthesisEngine,
    SynthesisResult,
    SynthesisStats,
)
from repro.core.vulnerabilities import default_signatures, lookup
from repro.obs import (
    CostKey,
    TraceContext,
    adopt_trace_context,
    aggregate_spans,
    current_trace_context,
    current_trace_id,
    get_cost_ledger,
    get_metrics,
    get_tracer,
    read_trace,
)
from repro.pipeline.cache import (
    NullCache,
    PipelineCache,
    content_hash,
    framework_fingerprint,
)
from repro.pipeline.faults import maybe_inject, mark_parent_process
from repro.pipeline.stats import RunReport, TaskFailure
from repro.sat import DEFAULT_BACKEND

T = TypeVar("T")
R = TypeVar("R")


# ----------------------------------------------------------------------
# Fault-tolerance policy

@dataclass(frozen=True)
class FaultPolicy:
    """Retry/timeout knobs governing every pipeline task.

    ``task_timeout`` is enforced on the process-pool path only (a task
    running in the orchestrator itself cannot be preempted safely); a
    timed-out task's pool generation is killed, so the stall never
    outlives ``task_timeout`` by more than the respawn cost.  A task is
    attempted ``1 + max_retries`` times in total; between attempts the
    executor backs off ``backoff_seconds * backoff_factor**(attempt-1)``.
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if self.backoff_seconds <= 0:
            return 0.0
        return self.backoff_seconds * (
            self.backoff_factor ** max(0, attempt - 1)
        )


@dataclass
class _TaskOutcome:
    """What one task ultimately produced: a payload or a failure.

    ``attribution`` is the cost-ledger key fragment the worker shipped
    back in its delta envelope (``{"bundle": ..., "signature": ...}``);
    ``None`` on paths that don't carry the envelope (serial, plain fn).
    """

    payload: Any = None
    failure: Optional[TaskFailure] = None
    attribution: Optional[Dict[str, str]] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class _RoundResult:
    """What one pool generation accomplished before ending.

    ``completed`` maps task index to ``("ok", result)`` or
    ``("error", message)`` -- a genuine exception raised *by the task
    function* and shipped back over the future, as opposed to pool
    infrastructure failure.  ``interrupted`` tasks were in flight when the
    pool died (fate unknown); ``unstarted`` tasks never ran at all.
    """

    completed: Dict[int, Tuple[str, Any]]
    interrupted: List[int]
    unstarted: List[int]
    timed_out: List[int]
    broke: bool


# ----------------------------------------------------------------------
# Worker functions: module-level (picklable), plain-data in and out.

def _extract_worker(task: Tuple[Any, bool]) -> Dict[str, Any]:
    from repro.statics import extract_app

    apk, handle_dynamic_receivers = task
    maybe_inject("extract", apk.package)
    # Spans emitted here land in the shared REPRO_TRACE file whether this
    # runs in the parent (serial path) or in a pool worker (the env var and
    # the O_APPEND descriptor discipline make the file multi-process safe).
    with get_tracer().span("pipeline.extract_app", package=apk.package):
        model = extract_app(
            apk, handle_dynamic_receivers=handle_dynamic_receivers
        )
    return serialize.app_to_dict(model)


def _synthesis_task_key(task: Dict[str, Any]) -> str:
    packages = ",".join(sorted(a["package"] for a in task["apps"]))
    return f"{task['signature']}|{packages}"


def _synthesis_worker(task: Dict[str, Any]) -> Dict[str, Any]:
    maybe_inject("synthesis", _synthesis_task_key(task))
    with get_tracer().span(
        "pipeline.synthesize",
        signature=task["signature"],
        apps=len(task["apps"]),
    ):
        bundle = BundleModel(
            apps=[serialize.app_from_dict(a) for a in task["apps"]]
        )
        signature = lookup(task["signature"])()
        engine = AnalysisAndSynthesisEngine(
            signatures=[signature],
            scenarios_per_signature=task["scenarios_per_signature"],
            minimal=task["minimal"],
            conflict_budget=task.get("conflict_budget"),
            time_budget_seconds=task.get("time_budget_seconds"),
            solver_backend=task.get("solver_backend", DEFAULT_BACKEND),
        )
        result = engine.run_signature(bundle, signature)
    return {
        "scenarios": [
            serialize.scenario_to_dict(s) for s in result.scenarios
        ],
        "stats": result.stats.to_dict(),
        "incomplete": bool(result.stats.exhausted),
    }


def _shared_task_key(task: Dict[str, Any]) -> str:
    packages = ",".join(sorted(a["package"] for a in task["apps"]))
    return f"shared[{','.join(task['signatures'])}]|{packages}"


def _shared_synthesis_worker(task: Dict[str, Any]) -> Dict[str, Any]:
    """One whole bundle under the shared encoding: translate once,
    enumerate every signature under its selector on the one warm solver."""
    maybe_inject("synthesis", _shared_task_key(task))
    with get_tracer().span(
        "pipeline.synthesize_bundle",
        signatures=len(task["signatures"]),
        apps=len(task["apps"]),
    ):
        bundle = BundleModel(
            apps=[serialize.app_from_dict(a) for a in task["apps"]]
        )
        signatures = [lookup(name)() for name in task["signatures"]]
        engine = AnalysisAndSynthesisEngine(
            signatures=signatures,
            scenarios_per_signature=task["scenarios_per_signature"],
            minimal=task["minimal"],
            conflict_budget=task.get("conflict_budget"),
            time_budget_seconds=task.get("time_budget_seconds"),
            shared_encoding=True,
            solver_backend=task.get("solver_backend", DEFAULT_BACKEND),
        )
        result = engine.run_shared(bundle)
    return {
        "scenarios": [
            serialize.scenario_to_dict(s) for s in result.scenarios
        ],
        "stats": result.stats.to_dict(),
        "incomplete": bool(result.stats.exhausted),
    }


def _extract_attribution(task: Tuple[Any, bool]) -> Dict[str, str]:
    return {"bundle": task[0].package, "signature": ""}


def _synthesis_attribution(task: Dict[str, Any]) -> Dict[str, str]:
    packages = ",".join(sorted(a["package"] for a in task["apps"]))
    # Shared-encoding tasks cover every signature on one solver; the
    # solver counters cannot be split per signature, so the whole bundle
    # is one account with the ``*`` signature wildcard.
    signature = task["signature"] if "signature" in task else "*"
    return {"bundle": packages, "signature": signature}


def _with_metrics_delta(
    fn: Callable[[T], R], attribution: Dict[str, str], task: T
) -> Tuple[R, Any, Dict[str, str]]:
    """Run ``fn`` in a pool worker and capture its per-task metrics delta.

    The worker's registry is reset before the task (a forked worker
    inherits the parent's counts; a reused worker carries the previous
    task's), so the returned snapshot is exactly what this task added.
    The parent merges it -- only on the parallel path, where in-process
    increments never happened.  The envelope also carries the cost-ledger
    attribution key, so the parent can post the delta to the right
    ``(bundle, signature)`` account.
    """
    metrics = get_metrics()
    if not metrics.enabled:
        return fn(task), None, attribution
    metrics.reset()
    payload = fn(task)
    return payload, metrics.snapshot(), attribution


def _extract_worker_obs(
    task: Tuple[Any, bool]
) -> Tuple[Dict[str, Any], Any, Dict[str, str]]:
    return _with_metrics_delta(_extract_worker, _extract_attribution(task), task)


def _synthesis_worker_obs(
    task: Dict[str, Any]
) -> Tuple[Dict[str, Any], Any, Dict[str, str]]:
    return _with_metrics_delta(
        _synthesis_worker, _synthesis_attribution(task), task
    )


def _shared_synthesis_worker_obs(
    task: Dict[str, Any]
) -> Tuple[Dict[str, Any], Any, Dict[str, str]]:
    return _with_metrics_delta(
        _shared_synthesis_worker, _synthesis_attribution(task), task
    )


def _traced_call(fn: Callable[[T], R], ctx_dict: Dict[str, Any], task: T) -> R:
    """Run ``fn`` in a pool worker under an adopted trace context.

    ``ctx_dict`` is the orchestrator's :class:`TraceContext` (captured at
    submit time, while the dispatch stage span was current), shipped
    across the process boundary as a plain dict so the partial stays
    picklable under both fork and spawn.  The worker's spans then parent
    under the dispatch span and carry the run's trace id instead of
    rooting a fresh per-pid tree.
    """
    with adopt_trace_context(TraceContext.from_dict(ctx_dict)):
        return fn(task)


# ----------------------------------------------------------------------

def attach_observability(
    report: RunReport, trace_path: Optional[str] = None
) -> RunReport:
    """Fold the active observability state into a run report.

    Copies the global metrics registry's snapshot into ``report.metrics``
    (when collection is enabled), the cost ledger's entries into
    ``report.cost``, and aggregates span records into ``report.spans`` --
    from ``trace_path`` if given, else from the global tracer (in-memory
    records, or the JSONL file a :class:`JsonlTracer` appends to, which
    also contains the worker processes' spans).  No-op on all fields when
    observability is disabled.
    """
    metrics = get_metrics()
    if metrics.enabled:
        report.metrics = metrics.snapshot()
    ledger = get_cost_ledger()
    if ledger.enabled:
        report.cost = ledger.entries()
    records = None
    if trace_path is not None:
        records = read_trace(trace_path)
    else:
        tracer = get_tracer()
        if getattr(tracer, "records", None) is not None:
            records = list(tracer.records)
        elif getattr(tracer, "path", None):
            records = read_trace(tracer.path)
    if records:
        report.spans = aggregate_spans(records)
    return report


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    reports: List[SeparReport]
    run_report: RunReport

    def findings_dict(self) -> Dict[str, Any]:
        """Canonical findings across all bundles (for files and diffing)."""
        return {
            "bundles": [
                {
                    "apps": sorted(a.package for a in report.bundle.apps),
                    "scenarios": [
                        serialize.scenario_to_dict(s)
                        for s in report.scenarios
                    ],
                    "policies": [
                        serialize.policy_to_dict(p) for p in report.policies
                    ],
                    "detection": report.detection.to_dict(),
                }
                for report in self.reports
            ],
        }


class AnalysisPipeline:
    """Fan-out + cache orchestration for multi-bundle SEPAR analysis.

    ``jobs <= 1`` runs everything serially in-process; higher values use a
    :class:`~concurrent.futures.ProcessPoolExecutor`, falling back to the
    serial path only when worker processes cannot be spawned at all.  Both
    paths execute the same worker functions, so outputs are identical byte
    for byte.  ``faults`` governs per-task retries/timeouts (see
    :class:`FaultPolicy`); ``conflict_budget`` / ``time_budget_seconds``
    bound each synthesis task, degrading it to a partial result instead of
    letting a SAT blow-up sink the run.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[PipelineCache] = None,
        signature_names: Optional[Sequence[str]] = None,
        scenarios_per_signature: int = 8,
        minimal: bool = True,
        handle_dynamic_receivers: bool = False,
        faults: Optional[FaultPolicy] = None,
        conflict_budget: Optional[int] = None,
        time_budget_seconds: Optional[float] = None,
        shared_encoding: bool = True,
        solver_backend: str = DEFAULT_BACKEND,
        start_method: Optional[str] = None,
    ) -> None:
        self.jobs = max(1, jobs)
        #: Pool start method ("fork", "spawn", ...); ``None`` = platform
        #: default.  Spawned workers re-import ``repro``, re-activating
        #: tracing/metrics from the inherited environment variables, so
        #: observability and results are identical under either method.
        self.start_method = start_method
        self.cache = cache if cache is not None else NullCache()
        self.signature_names = (
            list(signature_names)
            if signature_names is not None
            else [s.name for s in default_signatures()]
        )
        self.scenarios_per_signature = scenarios_per_signature
        self.minimal = minimal
        self.handle_dynamic_receivers = handle_dynamic_receivers
        self.faults = faults if faults is not None else FaultPolicy()
        self.conflict_budget = conflict_budget
        self.time_budget_seconds = time_budget_seconds
        self.shared_encoding = shared_encoding
        self.solver_backend = solver_backend

    # ------------------------------------------------------------------
    # Fault-tolerant task dispatch
    # ------------------------------------------------------------------
    def _map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        stage: str,
        labels: Sequence[str],
        obs_fn: Optional[Callable[[T], Tuple[R, Any]]] = None,
    ) -> List[_TaskOutcome]:
        """Order-preserving fault-tolerant map, parallel when jobs > 1.

        Returns one :class:`_TaskOutcome` per item, in item order: the
        task's payload, or the :class:`TaskFailure` it ended in after
        exhausting its retries.  On the parallel path, ``obs_fn`` (when
        given and metrics are on) replaces ``fn`` with a wrapper that also
        ships each task's metrics delta back for merging -- the serial
        path publishes into the parent's registry directly, so it uses
        plain ``fn``.  Each delta is merged exactly once, when its task
        completes; a pool break never re-merges or re-runs completed work.
        """
        if not items:
            return []
        mark_parent_process()
        if self.jobs <= 1 or len(items) <= 1:
            return [
                self._run_serial(fn, item, label, stage)
                for item, label in zip(items, labels)
            ]
        metrics = get_metrics()
        wrapped: Callable[[T], Any] = fn
        has_delta = False
        if obs_fn is not None and metrics.enabled:
            wrapped = obs_fn
            has_delta = True
        # Capture the dispatch-time trace context (the enclosing stage
        # span) and ship it with every task, so worker spans join this
        # run's tree.  The serial path needs nothing: contextvars flow
        # in-process.  A partial of a module-level function stays
        # picklable under both fork and spawn start methods.
        ctx = current_trace_context()
        if ctx is not None:
            wrapped = functools.partial(_traced_call, wrapped, ctx.to_dict())
        return self._run_pooled(wrapped, fn, items, labels, stage, has_delta)

    def _run_serial(
        self, fn: Callable[[T], R], item: T, label: str, stage: str
    ) -> _TaskOutcome:
        """In-process execution with the same retry policy as the pool.

        Only genuine task exceptions occur here (there is no pool to
        break and no preemptable timeout); they are retried with backoff
        and finally recorded as a structured failure.
        """
        metrics = get_metrics()
        policy = self.faults
        start = time.perf_counter()
        attempts = 0
        while True:
            attempts += 1
            try:
                payload = fn(item)
            except Exception as exc:  # noqa: BLE001 -- task isolation
                if attempts <= policy.max_retries:
                    metrics.counter("pipeline.task_retries").inc()
                    time.sleep(policy.delay(attempts))
                    continue
                metrics.counter("pipeline.task_failures").inc()
                return _TaskOutcome(
                    failure=TaskFailure(
                        stage=stage,
                        task=label,
                        kind="error",
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts,
                        elapsed_seconds=time.perf_counter() - start,
                    )
                )
            return _TaskOutcome(payload=payload)

    def _run_pooled(
        self,
        fn: Callable[[T], Any],
        serial_fn: Callable[[T], Any],
        items: Sequence[T],
        labels: Sequence[str],
        stage: str,
        has_delta: bool,
    ) -> List[_TaskOutcome]:
        """Per-task dispatch over successive pool generations.

        Tasks run in batched rounds; a round ends when its pool breaks
        (worker crash) or a task overruns the timeout, killing only that
        pool generation.  Completed tasks keep their results and metrics
        deltas; unstarted tasks and healthy tasks in flight when a peer's
        timeout killed the generation are requeued at no attempt cost;
        tasks in flight at a crash are re-run one per pool so a repeat
        crash is attributed to the task that caused it (crash isolation).
        """
        metrics = get_metrics()
        policy = self.faults
        n = len(items)
        outcomes: List[Optional[_TaskOutcome]] = [None] * n
        attempts = [0] * n
        first_try: Dict[int, float] = {}
        queue: Deque[int] = deque(range(n))
        isolate: Deque[int] = deque()
        retry_sleep = 0.0
        no_pool_support = False

        def record_failure(idx: int, kind: str, message: str) -> None:
            metrics.counter("pipeline.task_failures").inc()
            outcomes[idx] = _TaskOutcome(
                failure=TaskFailure(
                    stage=stage,
                    task=labels[idx],
                    kind=kind,
                    error=message,
                    attempts=attempts[idx],
                    elapsed_seconds=time.perf_counter()
                    - first_try.get(idx, time.perf_counter()),
                )
            )

        def record_success(idx: int, result: Any) -> None:
            if has_delta:
                payload, delta, attribution = result
                if delta:
                    metrics.merge(delta)
                outcomes[idx] = _TaskOutcome(
                    payload=payload, attribution=attribution
                )
            else:
                outcomes[idx] = _TaskOutcome(payload=result)

        def consume_attempt(idx: int, kind: str, message: str) -> None:
            nonlocal retry_sleep
            attempts[idx] += 1
            if attempts[idx] > policy.max_retries:
                record_failure(idx, kind, message)
                return
            metrics.counter("pipeline.task_retries").inc()
            retry_sleep = max(retry_sleep, policy.delay(attempts[idx]))
            # Crash suspects go back through isolation so a repeat crash
            # stays attributable; errors and timeouts rejoin the batch.
            (isolate if kind == "crash" else queue).append(idx)

        while queue or isolate:
            if retry_sleep > 0:
                time.sleep(retry_sleep)
                retry_sleep = 0.0
            if isolate:
                round_ids = [isolate.popleft()]
                workers = 1
            else:
                round_ids = list(queue)
                queue.clear()
                workers = min(self.jobs, len(round_ids))
            now = time.perf_counter()
            for idx in round_ids:
                first_try.setdefault(idx, now)
            round_result = self._pool_round(fn, items, round_ids, workers)
            if round_result is None:
                # No process support at all (restricted environments):
                # nothing in this round ran; finish everything serially.
                queue.extend(round_ids)
                no_pool_support = True
                break
            for idx, (status, value) in round_result.completed.items():
                if status == "ok":
                    record_success(idx, value)
                else:
                    consume_attempt(idx, "error", value)
            for idx in round_result.timed_out:
                metrics.counter("pipeline.task_timeouts").inc()
                consume_attempt(
                    idx,
                    "timeout",
                    f"task exceeded the {policy.task_timeout:.6g}s "
                    "per-task timeout",
                )
            if round_result.broke:
                metrics.counter("pipeline.pool_breaks").inc()
                if len(round_ids) == 1:
                    # Isolation round: this task is the proven culprit.
                    consume_attempt(
                        round_ids[0],
                        "crash",
                        "worker process crashed while running this task",
                    )
                else:
                    # Fate unknown: re-run each in-flight task alone so a
                    # repeat crash is attributed, at no attempt cost.
                    isolate.extend(round_result.interrupted)
            else:
                # Timeout force-kill: the generation died to stop the
                # victims, so in-flight peers were healthy when torn
                # down -- they rejoin the batch at no attempt cost.
                queue.extend(round_result.interrupted)
            queue.extend(round_result.unstarted)

        if no_pool_support:
            # Restricted environment (no process support): run the rest
            # in-process with the *plain* worker function -- the obs
            # wrapper resets the registry per task, which would clobber
            # the parent's counts; in-process execution publishes into
            # the parent registry directly, exactly like the serial path.
            for idx in list(queue) + list(isolate):
                if outcomes[idx] is None:
                    outcomes[idx] = self._run_serial(
                        serial_fn, items[idx], labels[idx], stage
                    )
        return [
            outcome
            if outcome is not None
            else _TaskOutcome(
                failure=TaskFailure(
                    stage=stage,
                    task=labels[idx],
                    kind="error",
                    error="task was never completed (executor invariant)",
                    attempts=attempts[idx],
                    elapsed_seconds=0.0,
                )
            )
            for idx, outcome in enumerate(outcomes)
        ]

    def _pool_round(
        self,
        fn: Callable[[T], Any],
        items: Sequence[T],
        round_ids: Sequence[int],
        workers: int,
    ) -> Optional[_RoundResult]:
        """Run one pool generation; never raises on task or pool failure.

        Returns ``None`` when a process pool cannot be created at all
        (the caller then falls back to serial execution).  Keeps at most
        ``workers`` tasks in flight so the per-task timeout measures
        *running* time, not queueing time.
        """
        try:
            mp_context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            pool = ProcessPoolExecutor(
                max_workers=workers, mp_context=mp_context
            )
        except (OSError, NotImplementedError, PermissionError, ValueError):
            return None
        completed: Dict[int, Tuple[str, Any]] = {}
        interrupted: List[int] = []
        timed_out: List[int] = []
        pending: Deque[int] = deque(round_ids)
        inflight: Dict[Any, int] = {}
        started: Dict[int, float] = {}
        timeout = self.faults.task_timeout
        broke = False
        force_kill = False
        try:
            while pending or inflight:
                while pending and len(inflight) < workers:
                    idx = pending.popleft()
                    try:
                        future = pool.submit(fn, items[idx])
                    except RuntimeError:
                        # Pool infrastructure failure (already broken or
                        # shut down) -- NOT a task error: the task never
                        # ran, so it goes back unstarted.
                        pending.appendleft(idx)
                        broke = True
                        break
                    inflight[future] = idx
                    started[idx] = time.monotonic()
                if broke or not inflight:
                    break
                wait_for = None
                if timeout is not None:
                    earliest = min(started[i] for i in inflight.values())
                    wait_for = max(
                        0.0, earliest + timeout - time.monotonic()
                    )
                done, _ = futures_wait(
                    set(inflight),
                    timeout=wait_for,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    idx = inflight.pop(future)
                    try:
                        completed[idx] = ("ok", future.result())
                    except BrokenProcessPool:
                        # Pool infrastructure failure -- fate of this
                        # task is unknown (it may have crashed the worker).
                        interrupted.append(idx)
                        broke = True
                    except Exception as exc:  # noqa: BLE001
                        # A genuine exception raised by the task function
                        # and pickled back across the future.
                        completed[idx] = (
                            "error", f"{type(exc).__name__}: {exc}"
                        )
                if broke:
                    break
                if timeout is not None:
                    now = time.monotonic()
                    victims = [
                        future
                        for future, idx in inflight.items()
                        if now - started[idx] >= timeout
                    ]
                    if victims:
                        for future in victims:
                            timed_out.append(inflight.pop(future))
                        force_kill = True
                        break
        finally:
            if broke or force_kill:
                interrupted.extend(inflight.values())
                self._kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        return _RoundResult(
            completed=completed,
            interrupted=interrupted,
            unstarted=list(pending),
            timed_out=timed_out,
            broke=broke,
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear down a pool whose workers may be hung or dead.

        ``shutdown(wait=True)`` would block behind a hung worker, so the
        worker processes are terminated outright; the abandoned
        generation's management thread observes the dead pipes and exits.
        """
        procs = getattr(pool, "_processes", None)
        processes = list(procs.values()) if procs else []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except TypeError:  # Python < 3.9: no cancel_futures
            pool.shutdown(wait=False)
        except Exception:
            pass
        for proc in processes:
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in processes:
            try:
                proc.join(timeout=2.0)
            except Exception:
                pass

    # ------------------------------------------------------------------
    @staticmethod
    def _record_degraded(
        run_report: RunReport,
        payload_task: Dict[str, Any],
        payload: Dict[str, Any],
    ) -> None:
        """Record budget-exhausted synthesis at signature granularity.

        A per-signature task degrades as a whole; a shared-encoding
        bundle task records one entry per signature whose enumeration
        hit the budget (the rest of the bundle's signatures completed),
        so both modes report the same degradation boundary.
        """
        metrics = get_metrics()
        packages = ",".join(
            sorted(a["package"] for a in payload_task["apps"])
        )
        if "signatures" in payload_task:
            per_signature = payload.get("stats", {}).get("per_signature", {})
            for name in payload_task["signatures"]:
                entry = per_signature.get(name, {})
                if not entry.get("exhausted"):
                    continue
                metrics.counter("pipeline.degraded_tasks").inc()
                run_report.degraded.append(
                    {
                        "stage": "synthesis",
                        "task": f"{name}|{packages}",
                        "reason": "budget_exhausted",
                        "scenarios": int(entry.get("scenarios", 0)),
                    }
                )
        else:
            metrics.counter("pipeline.degraded_tasks").inc()
            run_report.degraded.append(
                {
                    "stage": "synthesis",
                    "task": _synthesis_task_key(payload_task),
                    "reason": "budget_exhausted",
                    "scenarios": len(payload.get("scenarios", [])),
                }
            )

    def _engine_params(self) -> Dict[str, Any]:
        """Engine parameters that *do* shape results, and so cache keys.

        ``solver_backend`` is deliberately absent: backends are verified
        byte-identical (and budget-exhausted payloads are never cached),
        so a cache entry written under one backend is valid under the
        other.  The backend travels in the task payload instead.
        """
        return {
            "scenarios_per_signature": self.scenarios_per_signature,
            "minimal": self.minimal,
            "conflict_budget": self.conflict_budget,
            "time_budget_seconds": self.time_budget_seconds,
        }

    @staticmethod
    def _app_content_key(app_dict: Dict[str, Any]) -> str:
        """Hash of an app's *analysis-relevant* content.

        ``extraction_seconds`` is a wall-clock measurement that changes on
        every fresh extraction; hashing it would give re-extracted apps new
        synthesis keys and spuriously miss otherwise-valid cache entries.
        """
        return content_hash(
            {k: v for k, v in app_dict.items() if k != "extraction_seconds"}
        )

    # ------------------------------------------------------------------
    def extract_apps(
        self, apks: Sequence[Apk], report: Optional[RunReport] = None
    ) -> List[Optional[AppModel]]:
        """Extract app models, fanning cache misses out across processes.

        Returns a list aligned with ``apks``; an entry is ``None`` when
        that app's extraction ultimately failed (the failure is recorded
        in ``report.failures`` and the app is excluded from its bundle).
        """
        start = time.perf_counter()
        with get_tracer().span("pipeline.extract", apps=len(apks)) as stage:
            fingerprint = framework_fingerprint()
            keys = [
                content_hash(
                    {
                        "task": "extract",
                        "apk": apk,
                        "handle_dynamic_receivers": self.handle_dynamic_receivers,
                        "fingerprint": fingerprint,
                    }
                )
                for apk in apks
            ]
            dicts: List[Optional[Dict[str, Any]]] = [
                self.cache.get("extract", key) for key in keys
            ]
            miss_indices = [i for i, d in enumerate(dicts) if d is None]
            stage.set(cache_misses=len(miss_indices))
            outcomes = self._map(
                _extract_worker,
                [
                    (apks[i], self.handle_dynamic_receivers)
                    for i in miss_indices
                ],
                stage="extract",
                labels=[apks[i].package for i in miss_indices],
                obs_fn=_extract_worker_obs,
            )
            failures: List[TaskFailure] = []
            ledger = get_cost_ledger()
            if ledger.enabled:
                tid = current_trace_id() or ""
                missed = set(miss_indices)
                for i, apk in enumerate(apks):
                    if i not in missed:
                        ledger.charge(
                            CostKey(trace_id=tid, bundle=apk.package),
                            cache_hits=1,
                        )
            for index, outcome in zip(miss_indices, outcomes):
                if outcome.ok:
                    self.cache.put("extract", keys[index], outcome.payload)
                    dicts[index] = outcome.payload
                    if ledger.enabled:
                        attribution = outcome.attribution or (
                            _extract_attribution(
                                (apks[index], self.handle_dynamic_receivers)
                            )
                        )
                        ledger.charge(
                            CostKey(trace_id=tid, **attribution),
                            cache_misses=1,
                            wall_seconds=float(
                                outcome.payload.get("extraction_seconds", 0.0)
                            ),
                        )
                else:
                    failures.append(outcome.failure)
            if failures:
                stage.set(failures=len(failures))
            models = [
                serialize.app_from_dict(d) if d is not None else None
                for d in dicts
            ]
        if report is not None:
            report.add_stage("extract", time.perf_counter() - start)
            report.num_apps += sum(1 for m in models if m is not None)
            report.failures.extend(f.to_dict() for f in failures)
            report.cache = self.cache.accounting
        return models

    # ------------------------------------------------------------------
    def run(self, bundles: Sequence[Sequence[Apk]]) -> PipelineResult:
        """Analyze every bundle: extraction, synthesis, policies, detection."""
        run_report = RunReport(jobs=self.jobs)
        with get_tracer().span(
            "pipeline.run", jobs=self.jobs, bundles=len(bundles)
        ):
            all_apks = [apk for bundle in bundles for apk in bundle]
            models = self.extract_apps(all_apks, report=run_report)
            bundle_models: List[BundleModel] = []
            cursor = 0
            for bundle in bundles:
                size = len(bundle)
                # Apps whose extraction failed are dropped from their
                # bundle (already recorded in run_report.failures); the
                # rest of the bundle is still analyzed.
                bundle_models.append(
                    BundleModel(
                        apps=[
                            m
                            for m in models[cursor:cursor + size]
                            if m is not None
                        ]
                    )
                )
                cursor += size
            result = self.analyze_bundles(bundle_models, run_report=run_report)
        return result

    def analyze_bundles(
        self,
        bundle_models: Sequence[BundleModel],
        run_report: Optional[RunReport] = None,
    ) -> PipelineResult:
        """Synthesis + policy derivation + detection over extracted bundles."""
        run_report = run_report if run_report is not None else RunReport(jobs=self.jobs)
        run_report.num_bundles += len(bundle_models)
        tracer = get_tracer()
        metrics = get_metrics()
        fingerprint = framework_fingerprint()
        params = self._engine_params()

        start = time.perf_counter()
        with tracer.span(
            "pipeline.synthesis", bundles=len(bundle_models)
        ) as stage:
            bundle_apps: List[List[Dict[str, Any]]] = [
                [serialize.app_to_dict(a) for a in bundle.apps]
                for bundle in bundle_models
            ]
            app_hashes = [
                sorted(self._app_content_key(d) for d in apps)
                for apps in bundle_apps
            ]
            if self.shared_encoding:
                # One task per bundle: the worker translates once and
                # enumerates every signature on the shared warm solver.
                tasks: List[Tuple[int, int]] = [
                    (b, 0) for b in range(len(bundle_models))
                ]
                keys = [
                    content_hash(
                        {
                            "task": "synthesis",
                            "mode": "shared",
                            "apps": app_hashes[b],
                            "signatures": list(self.signature_names),
                            "params": params,
                            "fingerprint": fingerprint,
                        }
                    )
                    for b, _ in tasks
                ]
            else:
                tasks = [
                    (b, s)
                    for b in range(len(bundle_models))
                    for s in range(len(self.signature_names))
                ]
                keys = [
                    content_hash(
                        {
                            "task": "synthesis",
                            "apps": app_hashes[b],
                            "signature": self.signature_names[s],
                            "params": params,
                            "fingerprint": fingerprint,
                        }
                    )
                    for b, s in tasks
                ]
            cached: List[Optional[Dict[str, Any]]] = [
                self.cache.get("synthesis", key) for key in keys
            ]
            miss_indices = [i for i, c in enumerate(cached) if c is None]
            stage.set(tasks=len(tasks), cache_misses=len(miss_indices))
            if self.shared_encoding:
                task_payloads = [
                    {
                        "apps": bundle_apps[tasks[i][0]],
                        "signatures": list(self.signature_names),
                        "solver_backend": self.solver_backend,
                        **params,
                    }
                    for i in miss_indices
                ]
                worker, worker_obs = (
                    _shared_synthesis_worker,
                    _shared_synthesis_worker_obs,
                )
                labels = [_shared_task_key(t) for t in task_payloads]
            else:
                task_payloads = [
                    {
                        "apps": bundle_apps[tasks[i][0]],
                        "signature": self.signature_names[tasks[i][1]],
                        "solver_backend": self.solver_backend,
                        **params,
                    }
                    for i in miss_indices
                ]
                worker, worker_obs = _synthesis_worker, _synthesis_worker_obs
                labels = [_synthesis_task_key(t) for t in task_payloads]
            outcomes = self._map(
                worker,
                task_payloads,
                stage="synthesis",
                labels=labels,
                obs_fn=worker_obs,
            )
            ledger = get_cost_ledger()
            if ledger.enabled:
                tid = current_trace_id() or ""
                missed = set(miss_indices)
                for i, (b, s) in enumerate(tasks):
                    if i in missed:
                        continue
                    packages = ",".join(
                        sorted(a["package"] for a in bundle_apps[b])
                    )
                    signature = (
                        "*" if self.shared_encoding else self.signature_names[s]
                    )
                    ledger.charge(
                        CostKey(
                            trace_id=tid, bundle=packages, signature=signature
                        ),
                        cache_hits=1,
                    )
            for index, payload_task, outcome in zip(
                miss_indices, task_payloads, outcomes
            ):
                if not outcome.ok:
                    run_report.failures.append(outcome.failure.to_dict())
                    continue
                payload = outcome.payload
                cached[index] = payload
                if ledger.enabled:
                    attribution = outcome.attribution or (
                        _synthesis_attribution(payload_task)
                    )
                    key = CostKey(trace_id=tid, **attribution)
                    ledger.charge(key, cache_misses=1)
                    ledger.charge_stats(key, payload.get("stats", {}))
                if payload.get("incomplete"):
                    # Budget-exhausted: keep the partial scenarios and
                    # report the degradation.  The cache refuses incomplete
                    # payloads (recording a rejection), so a later run with
                    # more budget must redo the work.
                    self._record_degraded(run_report, payload_task, payload)
                self.cache.put("synthesis", keys[index], payload)
        run_report.add_stage("synthesis", time.perf_counter() - start)

        # Reassemble in (bundle, signature) index order: exactly the order
        # the serial engine would have produced.  Failed tasks are simply
        # absent -- every other (bundle, signature) pair is unaffected.
        start = time.perf_counter()
        reports: List[SeparReport] = []
        with tracer.span("pipeline.assemble", bundles=len(bundle_models)):
            for b, bundle in enumerate(bundle_models):
                scenarios = []
                stats = SynthesisStats()
                for i, (tb, _ts) in enumerate(tasks):
                    if tb != b:
                        continue
                    payload = cached[i]
                    if payload is None:
                        continue  # task failed; recorded in failures
                    scenarios.extend(
                        serialize.scenario_from_dict(s)
                        for s in payload["scenarios"]
                    )
                    stats.merge(SynthesisStats.from_dict(payload["stats"]))
                result = SynthesisResult(scenarios=scenarios, stats=stats)
                report = Separ.assemble_report(bundle, result)
                reports.append(report)
                run_report.solver.add_synthesis_stats(stats)
                run_report.construction_seconds += stats.construction_seconds
                run_report.solving_seconds += stats.solving_seconds
                run_report.num_scenarios += len(report.scenarios)
                run_report.num_policies += len(report.policies)
                run_report.per_bundle.append(
                    {
                        "apps": len(bundle.apps),
                        "scenarios": len(report.scenarios),
                        "policies": len(report.policies),
                        "conflicts": stats.conflicts,
                        "decisions": stats.decisions,
                        "propagations": stats.propagations,
                    }
                )
        run_report.add_stage("assemble", time.perf_counter() - start)
        run_report.cache = self.cache.accounting
        attach_observability(run_report)
        return PipelineResult(reports=reports, run_report=run_report)
