"""Content-addressed persistent cache for extraction and synthesis results.

Keys are SHA-256 digests over *canonical JSON* of everything the cached
computation depends on: the app/bundle content, the engine parameters, the
vulnerability signature, and a fingerprint of the analysis code itself
(framework meta-model, translator, solver).  Any change to the inputs or
to the analysis semantics therefore changes the key and the stale entry is
simply never addressed again; entries whose on-disk envelope predates the
current format version are discarded and counted as invalidations.

Canonical JSON matters: ``frozenset`` iteration order varies across
interpreter runs under hash randomization, so every set is sorted (by its
own canonical encoding) before hashing.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import hashlib
import inspect
import json
import os
import pathlib
import tempfile
import threading
from functools import lru_cache
from typing import Any, Dict, Optional

from repro.obs import get_metrics
from repro.pipeline.stats import CacheAccounting

#: Bump to invalidate every persisted entry (envelope format change).
CACHE_FORMAT_VERSION = 1

#: Environment variable consulted for the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def canonical(obj: Any) -> Any:
    """Reduce an object tree to deterministic JSON-encodable data.

    Handles dataclasses, enums, sets/frozensets (sorted by their canonical
    encoding), mappings (sorted keys), and sequences.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if isinstance(obj, (set, frozenset)):
        return sorted(
            (canonical(item) for item in obj),
            key=lambda c: json.dumps(c, sort_keys=True),
        )
    if isinstance(obj, dict):
        # Plain form only when every key is a genuine str: stringifying
        # other key types would collide 1 with "1" (and True with "True"),
        # letting two different inputs share one cache key.  Mixed or
        # non-str keys get an explicit pair-list form that preserves each
        # key's canonical encoding (and therefore its type).
        if all(type(k) is str for k in obj):
            return {k: canonical(v) for k, v in sorted(obj.items())}
        return {
            "__map__": sorted(
                ([canonical(k), canonical(v)] for k, v in obj.items()),
                key=lambda kv: json.dumps(kv[0], sort_keys=True),
            )
        }
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__}")


def canonical_json(obj: Any) -> str:
    return json.dumps(canonical(obj), sort_keys=True, separators=(",", ":"))


def content_hash(obj: Any) -> str:
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def framework_fingerprint() -> str:
    """Digest of the analysis code a cached result depends on.

    Covers model extraction, the relational embedding and meta-model, the
    translator/solver substrate, and the vulnerability signatures: editing
    any of them changes every cache key, which is exactly the invalidation
    the correctness argument needs.
    """
    import repro.android.intents
    import repro.core.app_to_spec
    import repro.core.model
    import repro.core.serialize
    import repro.core.synthesis
    import repro.core.vulnerabilities.base
    import repro.core.vulnerabilities.escalation
    import repro.core.vulnerabilities.hijack
    import repro.core.vulnerabilities.launch
    import repro.core.vulnerabilities.leak
    import repro.relational.problem
    import repro.relational.translate
    import repro.sat.cnf
    import repro.sat.fastsolver
    import repro.sat.solver
    import repro.sat.tseitin
    import repro.statics

    modules = [
        repro.android.intents,
        repro.core.app_to_spec,
        repro.core.model,
        repro.core.serialize,
        repro.core.synthesis,
        repro.core.vulnerabilities.base,
        repro.core.vulnerabilities.escalation,
        repro.core.vulnerabilities.hijack,
        repro.core.vulnerabilities.launch,
        repro.core.vulnerabilities.leak,
        repro.relational.problem,
        repro.relational.translate,
        # The whole SAT substrate: both backends (``fast`` is the default
        # since PR 6) and the CNF/Tseitin encoder.  Editing any of them
        # changes what a synthesis task computes, so all of them must
        # rotate every cache key.
        repro.sat.cnf,
        repro.sat.fastsolver,
        repro.sat.solver,
        repro.sat.tseitin,
        repro.statics,
    ]
    digest = hashlib.sha256()
    for module in modules:
        digest.update(module.__name__.encode("utf-8"))
        try:
            digest.update(inspect.getsource(module).encode("utf-8"))
        except (OSError, TypeError):  # no source (frozen/zipped): name only
            pass
    return digest.hexdigest()


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-pipeline"


class PipelineCache:
    """A directory of JSON entries addressed by content hash.

    Layout: ``<root>/<namespace>/<hash[:2]>/<hash>.json``.  Entries carry a
    format-version envelope; a version mismatch counts as an invalidation
    (the file is removed) plus a miss.
    """

    def __init__(self, root: Optional[pathlib.Path] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else default_cache_dir()
        self.accounting = CacheAccounting()

    def _path(self, namespace: str, key: str) -> pathlib.Path:
        return self.root / namespace / key[:2] / f"{key}.json"

    def get(self, namespace: str, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(namespace, key)
        metrics = get_metrics()
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            self.accounting.record_miss(namespace)
            if metrics.enabled:
                metrics.counter(f"cache.{namespace}.misses").inc()
            return None
        if envelope.get("version") != CACHE_FORMAT_VERSION:
            self.accounting.record_invalidation(namespace)
            self.accounting.record_miss(namespace)
            if metrics.enabled:
                metrics.counter(f"cache.{namespace}.invalidations").inc()
                metrics.counter(f"cache.{namespace}.misses").inc()
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.accounting.record_hit(namespace)
        if metrics.enabled:
            metrics.counter(f"cache.{namespace}.hits").inc()
        return envelope["payload"]

    def put(self, namespace: str, key: str, payload: Dict[str, Any]) -> None:
        # Degraded (budget-exhausted) payloads are partial results: caching
        # one would freeze the degradation -- a later run with more budget
        # could never improve on it.  Refuse the write and count it.
        if isinstance(payload, dict) and payload.get("incomplete"):
            self.accounting.record_rejection(namespace)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter(f"cache.{namespace}.rejections").inc()
            return
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {"version": CACHE_FORMAT_VERSION, "payload": payload}
        # Unique per-process/per-attempt tmp name in the entry's own
        # directory (same filesystem, so the final rename is atomic).  A
        # fixed tmp name would be shared by every concurrent writer of
        # this key: two pool workers could interleave truncate/write and
        # ``os.replace`` a torn file.  ``get`` only ever reads
        # ``<key>.json``, so a half-written tmp is never visible.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f"{path.name}.{os.getpid()}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(envelope, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Remove every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class MemoryCache(PipelineCache):
    """In-process content-addressed cache with the PipelineCache contract.

    Used by the long-running policy service (`repro serve`): warm session
    state must survive across requests without disk I/O on the hot path.
    Entries are kept per namespace in insertion order and evicted LRU once
    ``max_entries`` is exceeded (0 disables the bound).  Payloads are
    round-tripped through JSON on ``put`` so a cached result is exactly as
    isolated from caller mutation as a disk entry would be, and the same
    degraded-payload rejection applies.  Thread-safe: the service's worker
    threads share one instance.
    """

    def __init__(self, max_entries: int = 0) -> None:
        self.root = None  # type: ignore[assignment]
        self.accounting = CacheAccounting()
        self.max_entries = max_entries
        self._entries: Dict[str, "collections.OrderedDict[str, str]"] = {}
        self._lock = threading.Lock()

    def get(self, namespace: str, key: str) -> Optional[Dict[str, Any]]:
        metrics = get_metrics()
        with self._lock:
            bucket = self._entries.get(namespace)
            text = bucket.get(key) if bucket is not None else None
            if text is not None:
                bucket.move_to_end(key)
        if text is None:
            self.accounting.record_miss(namespace)
            if metrics.enabled:
                metrics.counter(f"cache.{namespace}.misses").inc()
            return None
        self.accounting.record_hit(namespace)
        if metrics.enabled:
            metrics.counter(f"cache.{namespace}.hits").inc()
        return json.loads(text)

    def put(self, namespace: str, key: str, payload: Dict[str, Any]) -> None:
        if isinstance(payload, dict) and payload.get("incomplete"):
            self.accounting.record_rejection(namespace)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.counter(f"cache.{namespace}.rejections").inc()
            return
        text = json.dumps(payload, sort_keys=True)
        with self._lock:
            bucket = self._entries.setdefault(
                namespace, collections.OrderedDict()
            )
            bucket[key] = text
            bucket.move_to_end(key)
            if self.max_entries > 0:
                while len(bucket) > self.max_entries:
                    bucket.popitem(last=False)

    def clear(self) -> int:
        with self._lock:
            removed = sum(len(bucket) for bucket in self._entries.values())
            self._entries.clear()
        return removed

    def __len__(self) -> int:
        with self._lock:
            return sum(len(bucket) for bucket in self._entries.values())


class NullCache(PipelineCache):
    """Cache-shaped no-op for cacheless runs; still counts misses."""

    def __init__(self) -> None:  # no root directory at all
        self.root = None  # type: ignore[assignment]
        self.accounting = CacheAccounting()

    def get(self, namespace: str, key: str) -> Optional[Dict[str, Any]]:
        self.accounting.record_miss(namespace)
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter(f"cache.{namespace}.misses").inc()
        return None

    def put(self, namespace: str, key: str, payload: Dict[str, Any]) -> None:
        pass

    def clear(self) -> int:
        return 0
