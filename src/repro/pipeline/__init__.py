"""Parallel, content-addressed analysis/synthesis pipeline.

Fans SEPAR's two independent workload axes -- per-app model extraction and
per-(bundle, signature) synthesis -- across a process pool, backed by a
persistent cache keyed by content hashes of the inputs and the analysis
code.  See :mod:`repro.pipeline.executor` for the orchestration,
:mod:`repro.pipeline.cache` for the cache, and
:mod:`repro.pipeline.stats` for the machine-readable run report.
"""

from repro.pipeline.cache import (
    CACHE_DIR_ENV,
    CACHE_FORMAT_VERSION,
    NullCache,
    PipelineCache,
    canonical_json,
    content_hash,
    default_cache_dir,
    framework_fingerprint,
)
from repro.pipeline.executor import (
    AnalysisPipeline,
    FaultPolicy,
    PipelineResult,
    attach_observability,
)
from repro.pipeline.faults import FAULT_ENV, FAULT_STATE_ENV, InjectedFault
from repro.pipeline.stats import (
    CacheAccounting,
    RunReport,
    SolverCounters,
    StageTiming,
    TaskFailure,
)

__all__ = [
    "AnalysisPipeline",
    "FaultPolicy",
    "TaskFailure",
    "InjectedFault",
    "FAULT_ENV",
    "FAULT_STATE_ENV",
    "PipelineResult",
    "attach_observability",
    "PipelineCache",
    "NullCache",
    "CacheAccounting",
    "RunReport",
    "SolverCounters",
    "StageTiming",
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "canonical_json",
    "content_hash",
    "default_cache_dir",
    "framework_fingerprint",
]
