"""Test-only fault injection for the pipeline executor.

The fault-tolerance machinery in :mod:`repro.pipeline.executor` is only
trustworthy if its failure paths are exercised: worker crashes, task
exceptions, and hangs.  Real pathological inputs are hard to come by in a
test suite, so this module injects faults deterministically at worker
entry, driven entirely by the ``REPRO_FAULT`` environment variable:

    REPRO_FAULT="<stage>:<kind>:<rate>[:opt]...[,<spec>...]"

- ``stage``   -- ``extract``, ``synthesis`` or ``*``.
- ``kind``    -- ``crash`` (hard-exit the worker process, breaking the
  pool), ``error`` (raise :class:`InjectedFault`), or ``hang`` (sleep far
  past any sane task timeout -- or for exactly ``secs=N`` seconds, which
  turns the hang into a *delay* for exercising slow-but-healthy tasks).
- ``rate``    -- fraction of tasks hit, selected *deterministically* by
  hashing ``(seed, stage, task_key)`` so the same task is hit on every
  attempt and in every run.
- options     -- ``once`` (inject only on the first attempt per task;
  needs ``REPRO_FAULT_STATE`` pointing at a writable directory shared by
  the worker processes), ``seed=N`` (reseed the selection hash),
  ``match=SUBSTR`` (only hit tasks whose key contains the substring), and
  ``secs=N`` (sleep duration for ``hang`` faults; default
  :data:`HANG_SECONDS`).

``crash`` and ``hang`` are suppressed in the parent process (the serial
path) -- exiting or stalling the orchestrator would defeat the point of
testing its fault tolerance.  The executor records its pid in
``REPRO_FAULT_PARENT`` before dispatching so workers can tell the two
apart.

Production runs never set ``REPRO_FAULT``; the fast path is a single
cached environment lookup returning an empty tuple.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

#: Fault specification environment variable (see module docstring).
FAULT_ENV = "REPRO_FAULT"

#: Directory used to remember which tasks a ``once`` fault already hit.
FAULT_STATE_ENV = "REPRO_FAULT_STATE"

#: Pid of the dispatching (parent) process; set by the executor so
#: process-level faults (crash/hang) never fire on the serial path.
FAULT_PARENT_ENV = "REPRO_FAULT_PARENT"

#: Exit status used by injected crashes (recognizable in worker logs).
CRASH_EXIT_STATUS = 173

#: How long an injected hang sleeps; any per-task timeout fires first.
HANG_SECONDS = 600.0

_KINDS = ("crash", "error", "hang")


class InjectedFault(RuntimeError):
    """The exception raised by an ``error``-kind injected fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``stage:kind:rate[:opt]...`` clause."""

    stage: str
    kind: str
    rate: float
    once: bool = False
    seed: int = 0
    match: str = ""
    secs: Optional[float] = None

    def applies(self, stage: str, task_key: str) -> bool:
        if self.stage not in ("*", stage):
            return False
        if self.match and self.match not in task_key:
            return False
        if self.rate >= 1.0:
            return True
        digest = hashlib.sha256(
            f"{self.seed}:{stage}:{task_key}".encode("utf-8")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return fraction < self.rate


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse one clause; raises ``ValueError`` on malformed input."""
    parts = [p.strip() for p in text.split(":")]
    if len(parts) < 3:
        raise ValueError(f"fault spec needs stage:kind:rate, got {text!r}")
    stage, kind, rate_text = parts[0], parts[1], parts[2]
    if kind not in _KINDS:
        raise ValueError(f"unknown fault kind {kind!r} (expected {_KINDS})")
    rate = float(rate_text)
    once = False
    seed = 0
    match = ""
    secs: Optional[float] = None
    for opt in parts[3:]:
        if opt == "once":
            once = True
        elif opt.startswith("seed="):
            seed = int(opt[len("seed="):])
        elif opt.startswith("match="):
            match = opt[len("match="):]
        elif opt.startswith("secs="):
            secs = float(opt[len("secs="):])
        else:
            raise ValueError(f"unknown fault option {opt!r}")
    return FaultSpec(
        stage=stage, kind=kind, rate=rate, once=once, seed=seed, match=match,
        secs=secs,
    )


def active_fault_specs() -> Tuple[FaultSpec, ...]:
    """The specs currently configured via ``REPRO_FAULT`` (usually none).

    Read from the environment on every call: the variable is inherited by
    pool workers whether they fork or spawn, and tests flip it per-case.
    """
    text = os.environ.get(FAULT_ENV, "")
    if not text:
        return ()
    return tuple(
        parse_fault_spec(clause)
        for clause in text.split(",")
        if clause.strip()
    )


def faults_active() -> bool:
    return bool(os.environ.get(FAULT_ENV))


def _in_worker_process() -> bool:
    parent = os.environ.get(FAULT_PARENT_ENV)
    return parent is not None and parent != str(os.getpid())


def _already_fired(spec: FaultSpec, stage: str, task_key: str) -> bool:
    """For ``once`` faults: check-and-set a marker file shared across
    worker processes (and across pool respawns)."""
    state_dir = os.environ.get(FAULT_STATE_ENV)
    if not state_dir:
        return False
    marker = pathlib.Path(state_dir) / (
        hashlib.sha256(
            f"{spec.stage}:{spec.kind}:{stage}:{task_key}".encode("utf-8")
        ).hexdigest()
        + ".fired"
    )
    # O_CREAT|O_EXCL is an atomic check-and-set: of any number of workers
    # racing on the same fault, exactly one creates the marker (and
    # injects); a plain exists()+touch() would let several through.
    try:
        marker.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(marker), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return True
    except OSError:
        return False
    os.close(fd)
    return False


def maybe_inject(stage: str, task_key: str) -> None:
    """Called at worker entry; injects the configured fault, if any.

    No-op unless ``REPRO_FAULT`` selects this (stage, task); ``crash`` and
    ``hang`` additionally require running inside a pool worker process.
    """
    for spec in active_fault_specs():
        if not spec.applies(stage, task_key):
            continue
        if spec.once and _already_fired(spec, stage, task_key):
            continue
        if spec.kind == "error":
            raise InjectedFault(
                f"injected fault: stage={stage} task={task_key}"
            )
        if not _in_worker_process():
            continue  # never crash or stall the orchestrator itself
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_STATUS)
        if spec.kind == "hang":
            time.sleep(spec.secs if spec.secs is not None else HANG_SECONDS)


def mark_parent_process() -> None:
    """Record the dispatching process's pid (see ``FAULT_PARENT_ENV``)."""
    if faults_active():
        os.environ[FAULT_PARENT_ENV] = str(os.getpid())
