"""Pipeline instrumentation: stage timings, cache accounting, run reports.

A :class:`RunReport` is the machine-readable record of one pipeline run:
per-stage wall time, the CDCL solver counters rolled up across every
synthesis call, and the cache's hit/miss/invalidation accounting.  The
Table 2 / Fig 5 benchmark harnesses and ``benchsuite.metrics`` consume it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class TaskFailure:
    """A pipeline task that exhausted its retries.

    ``kind`` distinguishes the failure mode: ``error`` (the worker
    function raised), ``timeout`` (the task overran the per-task
    timeout), or ``crash`` (the worker process died while running it --
    attributed via isolation re-runs).  Failures are *data*, not control
    flow: the run completes and reports them in ``RunReport.failures``.
    """

    stage: str
    task: str
    kind: str
    error: str
    attempts: int = 1
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "task": self.task,
            "kind": self.kind,
            "error": self.error,
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TaskFailure":
        return TaskFailure(
            stage=data.get("stage", ""),
            task=data.get("task", ""),
            kind=data.get("kind", "error"),
            error=data.get("error", ""),
            attempts=data.get("attempts", 1),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )


@dataclass
class StageTiming:
    """Wall-clock seconds spent in one pipeline stage."""

    name: str
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seconds": self.seconds}


@dataclass
class CacheAccounting:
    """Hit/miss/invalidation counters, kept per namespace.

    ``invalidations`` counts persisted entries that were found but
    discarded (stale format version); every invalidation is also a miss.
    ``rejections`` counts writes the cache refused because the payload
    was marked incomplete (degraded results are never cached).
    """

    hits: Dict[str, int] = field(default_factory=dict)
    misses: Dict[str, int] = field(default_factory=dict)
    invalidations: Dict[str, int] = field(default_factory=dict)
    rejections: Dict[str, int] = field(default_factory=dict)

    def record_hit(self, namespace: str) -> None:
        self.hits[namespace] = self.hits.get(namespace, 0) + 1

    def record_miss(self, namespace: str) -> None:
        self.misses[namespace] = self.misses.get(namespace, 0) + 1

    def record_invalidation(self, namespace: str) -> None:
        self.invalidations[namespace] = (
            self.invalidations.get(namespace, 0) + 1
        )

    def record_rejection(self, namespace: str) -> None:
        self.rejections[namespace] = self.rejections.get(namespace, 0) + 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_invalidations(self) -> int:
        return sum(self.invalidations.values())

    @property
    def total_rejections(self) -> int:
        return sum(self.rejections.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": dict(sorted(self.hits.items())),
            "misses": dict(sorted(self.misses.items())),
            "invalidations": dict(sorted(self.invalidations.items())),
            "rejections": dict(sorted(self.rejections.items())),
            "total_hits": self.total_hits,
            "total_misses": self.total_misses,
            "total_invalidations": self.total_invalidations,
            "total_rejections": self.total_rejections,
        }


@dataclass
class SolverCounters:
    """CDCL and encoding work rolled up across every SAT call of a run.

    The last four fields account for shared-encoding reuse:
    ``translations`` counts full formula-to-CNF translations actually
    performed, ``translations_avoided`` the ones the shared encoding
    skipped, ``clauses_shared`` the base clauses warm queries reused
    instead of re-adding, and ``learned_carried`` the learned clauses
    already in the solver when each subsequent signature started.
    """

    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    solver_calls: int = 0
    num_vars: int = 0
    num_clauses: int = 0
    translations: int = 0
    translations_avoided: int = 0
    clauses_shared: int = 0
    learned_carried: int = 0
    # Solver backend that produced these counters ("reference"/"fast";
    # "mixed" if stats from different backends were folded together, ""
    # when nothing has been recorded, e.g. an all-cache-hits run).
    backend: str = ""

    def add_synthesis_stats(self, stats: "SynthesisStatsLike") -> None:
        other_backend = getattr(stats, "backend", "")
        if not self.backend:
            self.backend = other_backend
        elif other_backend and other_backend != self.backend:
            self.backend = "mixed"
        self.conflicts += stats.conflicts
        self.decisions += stats.decisions
        self.propagations += stats.propagations
        self.solver_calls += stats.solver_calls
        self.num_vars += stats.num_vars
        self.num_clauses += stats.num_clauses
        self.translations += getattr(stats, "translations", 0)
        self.translations_avoided += getattr(
            stats, "translations_avoided", 0
        )
        self.clauses_shared += getattr(stats, "clauses_shared", 0)
        self.learned_carried += getattr(stats, "learned_carried", 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "solver_calls": self.solver_calls,
            "num_vars": self.num_vars,
            "num_clauses": self.num_clauses,
            "translations": self.translations,
            "translations_avoided": self.translations_avoided,
            "clauses_shared": self.clauses_shared,
            "learned_carried": self.learned_carried,
            "backend": self.backend,
        }


class SynthesisStatsLike:
    """Structural protocol: anything carrying the rolled-up counters."""

    conflicts: int
    decisions: int
    propagations: int
    solver_calls: int
    num_vars: int
    num_clauses: int
    translations: int
    translations_avoided: int
    clauses_shared: int
    learned_carried: int


@dataclass
class RunReport:
    """The machine-readable record of one pipeline run.

    ``spans``, ``metrics`` and ``cost`` are populated only when
    observability is enabled for the run: ``spans`` carries the
    per-span-name roll-up of a JSONL trace
    (:func:`repro.obs.view.aggregate_spans` output), ``metrics`` a
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`, and ``cost`` the
    cost ledger's attribution entries
    (:meth:`repro.obs.cost.CostLedger.entries` rows keyed by
    ``trace_id``/``device``/``bundle``/``signature``).  All default to
    empty and serialize round-trip losslessly.

    ``failures`` lists every task that exhausted its retries
    (:meth:`TaskFailure.to_dict` records) and ``degraded`` every
    synthesis task that ran out of budget and returned a partial payload
    (``{stage, task, reason, scenarios}``).  An empty list in both means
    the run was clean.
    """

    jobs: int = 1
    num_apps: int = 0
    num_bundles: int = 0
    num_scenarios: int = 0
    num_policies: int = 0
    stages: List[StageTiming] = field(default_factory=list)
    cache: CacheAccounting = field(default_factory=CacheAccounting)
    solver: SolverCounters = field(default_factory=SolverCounters)
    construction_seconds: float = 0.0
    solving_seconds: float = 0.0
    per_bundle: List[Dict[str, Any]] = field(default_factory=list)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cost: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Dict[str, Any]] = field(default_factory=list)
    degraded: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no task failed and no result was degraded."""
        return not self.failures and not self.degraded

    def stage(self, name: str) -> Optional[StageTiming]:
        for timing in self.stages:
            if timing.name == name:
                return timing
        return None

    def add_stage(self, name: str, seconds: float) -> StageTiming:
        timing = StageTiming(name=name, seconds=seconds)
        self.stages.append(timing)
        return timing

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.stages)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "num_apps": self.num_apps,
            "num_bundles": self.num_bundles,
            "num_scenarios": self.num_scenarios,
            "num_policies": self.num_policies,
            "stages": [t.to_dict() for t in self.stages],
            "total_seconds": self.total_seconds,
            "cache": self.cache.to_dict(),
            "solver": self.solver.to_dict(),
            "construction_seconds": self.construction_seconds,
            "solving_seconds": self.solving_seconds,
            "per_bundle": self.per_bundle,
            "spans": self.spans,
            "metrics": self.metrics,
            "cost": self.cost,
            "failures": self.failures,
            "degraded": self.degraded,
        }

    def dumps(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "RunReport":
        report = RunReport(
            jobs=data.get("jobs", 1),
            num_apps=data.get("num_apps", 0),
            num_bundles=data.get("num_bundles", 0),
            num_scenarios=data.get("num_scenarios", 0),
            num_policies=data.get("num_policies", 0),
            construction_seconds=data.get("construction_seconds", 0.0),
            solving_seconds=data.get("solving_seconds", 0.0),
            per_bundle=list(data.get("per_bundle", ())),
            spans={k: dict(v) for k, v in data.get("spans", {}).items()},
            metrics={k: dict(v) for k, v in data.get("metrics", {}).items()},
            cost=[dict(c) for c in data.get("cost", ())],
            failures=[dict(f) for f in data.get("failures", ())],
            degraded=[dict(d) for d in data.get("degraded", ())],
        )
        for timing in data.get("stages", ()):
            report.add_stage(timing["name"], timing["seconds"])
        cache = data.get("cache", {})
        report.cache.hits = dict(cache.get("hits", {}))
        report.cache.misses = dict(cache.get("misses", {}))
        report.cache.invalidations = dict(cache.get("invalidations", {}))
        report.cache.rejections = dict(cache.get("rejections", {}))
        solver = data.get("solver", {})
        report.solver = SolverCounters(
            conflicts=solver.get("conflicts", 0),
            decisions=solver.get("decisions", 0),
            propagations=solver.get("propagations", 0),
            solver_calls=solver.get("solver_calls", 0),
            num_vars=solver.get("num_vars", 0),
            num_clauses=solver.get("num_clauses", 0),
            translations=solver.get("translations", 0),
            translations_avoided=solver.get("translations_avoided", 0),
            clauses_shared=solver.get("clauses_shared", 0),
            learned_carried=solver.get("learned_carried", 0),
            backend=solver.get("backend", ""),
        )
        return report

    @staticmethod
    def loads(text: str) -> "RunReport":
        return RunReport.from_dict(json.loads(text))
