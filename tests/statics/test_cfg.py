"""Tests for control-flow graph construction and reachability."""

from repro.dex import MethodBuilder
from repro.statics.cfg import ControlFlowGraph


def cfg_of(builder):
    return ControlFlowGraph(builder.build())


class TestBlocks:
    def test_straight_line_single_block(self):
        cfg = cfg_of(
            MethodBuilder("m").const_string("v0", "a").const_string("v1", "b").ret()
        )
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].successors == []

    def test_if_splits_blocks(self):
        cfg = cfg_of(
            MethodBuilder("m")
            .if_goto("v0", "else")
            .const_string("v1", "then")
            .ret()
            .label("else")
            .const_string("v1", "else")
            .ret()
        )
        assert len(cfg.blocks) == 3
        assert sorted(cfg.blocks[0].successors) == [1, 2]

    def test_goto_edge(self):
        cfg = cfg_of(
            MethodBuilder("m")
            .goto("end")
            .const_string("v0", "dead")
            .label("end")
            .ret()
        )
        first = cfg.blocks[0]
        assert len(first.successors) == 1

    def test_loop_back_edge(self):
        cfg = cfg_of(
            MethodBuilder("m")
            .label("top")
            .const_string("v0", "x")
            .if_goto("v1", "top")
            .ret()
        )
        reach = cfg.reachable_blocks()
        assert len(reach) == len(cfg.blocks)
        # a predecessor relationship closes the loop
        assert any(0 in b.successors for b in cfg.blocks)

    def test_empty_method(self):
        cfg = ControlFlowGraph(
            MethodBuilder("m").build()
        )  # builder inserts a lone return
        assert len(cfg.blocks) == 1


class TestReachability:
    def test_code_after_goto_unreachable(self):
        cfg = cfg_of(
            MethodBuilder("m")
            .goto("end")
            .const_string("v0", "dead")
            .label("end")
            .ret()
        )
        live = cfg.reachable_instructions()
        assert 1 not in live
        assert 0 in live and 2 in live

    def test_code_after_return_unreachable(self):
        cfg = cfg_of(
            MethodBuilder("m").ret().const_string("v0", "dead").ret()
        )
        assert 1 not in cfg.reachable_instructions()

    def test_both_branch_arms_reachable(self):
        cfg = cfg_of(
            MethodBuilder("m")
            .if_goto("v0", "skip")
            .const_string("v1", "then")
            .label("skip")
            .ret()
        )
        assert cfg.reachable_instructions() == frozenset({0, 1, 2})

    def test_block_of_lookup(self):
        cfg = cfg_of(
            MethodBuilder("m")
            .const_string("v0", "a")
            .if_goto("v0", "end")
            .const_string("v1", "b")
            .label("end")
            .ret()
        )
        assert cfg.block_of(0).index == cfg.block_of(1).index
        assert cfg.block_of(2).index != cfg.block_of(0).index
