"""Termination and convergence properties of the dataflow analyses.

Random programs with loops and branches must never hang the fixpoint
engines, and re-running an analysis must be deterministic.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.manifest import Manifest
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.statics import extract_app
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import ValueAnalysis


@st.composite
def looping_methods(draw):
    """A method with random const/move/branch structure, always valid."""
    n_blocks = draw(st.integers(min_value=1, max_value=5))
    b = MethodBuilder("onStartCommand", params=("p0",))
    labels = [f"L{i}" for i in range(n_blocks)]
    for i, label in enumerate(labels):
        b.label(label)
        for j in range(draw(st.integers(min_value=1, max_value=4))):
            reg = f"v{draw(st.integers(min_value=0, max_value=3))}"
            b.const_string(reg, f"s{i}_{j}")
        # Random branch to any block (back edges create loops).
        if draw(st.booleans()):
            target = draw(st.sampled_from(labels))
            b.if_goto(f"v{draw(st.integers(min_value=0, max_value=3))}", target)
    b.ret()
    return b.build()


@given(looping_methods())
@settings(max_examples=50, deadline=None)
def test_value_analysis_terminates_on_loops(method):
    apk = Apk(
        Manifest(
            package="p",
            components=[ComponentDecl("Svc", ComponentKind.SERVICE)],
        ),
        DexProgram([DexClass("Svc", superclass="Service", methods=[method])]),
    )
    callgraph = CallGraph(apk)
    values = ValueAnalysis(callgraph)
    assert values.states_before is not None


@given(looping_methods())
@settings(max_examples=30, deadline=None)
def test_full_extraction_deterministic(method):
    apk = Apk(
        Manifest(
            package="p",
            components=[ComponentDecl("Svc", ComponentKind.SERVICE)],
        ),
        DexProgram([DexClass("Svc", superclass="Service", methods=[method])]),
    )
    a = extract_app(apk)
    b = extract_app(apk)
    assert a.components == b.components
    assert a.intents == b.intents


def test_mutually_recursive_methods_terminate():
    cls = DexClass(
        "Svc",
        superclass="Service",
        methods=[
            MethodBuilder("onStartCommand", params=("p0",))
            .invoke("this.ping", args=("p0",), dest="v0")
            .invoke("Log.d", args=("v1", "v0"))
            .ret()
            .build(),
            MethodBuilder("ping", params=("p0",))
            .invoke("this.pong", args=("p0",), dest="v0")
            .ret("v0")
            .build(),
            MethodBuilder("pong", params=("p0",))
            .invoke("this.ping", args=("p0",), dest="v0")
            .ret("v0")
            .build(),
        ],
    )
    apk = Apk(
        Manifest(
            package="p", components=[ComponentDecl("Svc", ComponentKind.SERVICE)]
        ),
        DexProgram([cls]),
    )
    model = extract_app(apk)  # must not hang
    assert model.components


def test_self_recursive_taint_terminates():
    cls = DexClass(
        "Svc",
        superclass="Service",
        methods=[
            MethodBuilder("onStartCommand", params=("p0",))
            .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v1")
            .invoke("this.spin", args=("v1",), dest="v2")
            .invoke("Log.d", args=("v3", "v2"))
            .ret()
            .build(),
            MethodBuilder("spin", params=("p0",))
            .invoke("this.spin", args=("p0",), dest="v0")
            .move("v1", "p0")
            .ret("v1")
            .build(),
        ],
    )
    apk = Apk(
        Manifest(
            package="p", components=[ComponentDecl("Svc", ComponentKind.SERVICE)]
        ),
        DexProgram([cls]),
    )
    model = extract_app(apk)
    from repro.android.resources import Resource
    from repro.core.model import PathModel

    # The recursive identity still carries the taint to the sink.
    assert PathModel(Resource.IMEI, Resource.LOG) in model.component("p/Svc").paths
