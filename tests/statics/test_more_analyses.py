"""Additional static-analysis coverage: permission extraction, data/type
Intent attributes, resolver extraction, static fields, and attribution of
shared helper methods."""

import pytest

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.android.resources import Resource
from repro.core.model import PathModel
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.statics import extract_app
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import ValueAnalysis
from repro.statics.permission_extraction import PermissionExtraction

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE


def service_app(methods, package="p", name="Svc", extra_decls=(), extra_classes=()):
    return Apk(
        Manifest(
            package=package,
            components=[ComponentDecl(name, S)] + list(extra_decls),
        ),
        DexProgram(
            [DexClass(name, superclass="Service", methods=methods)]
            + list(extra_classes)
        ),
    )


class TestPermissionExtraction:
    def test_direct_api_tagging(self):
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",))
                .invoke("SmsManager.getDefault", dest="v0")
                .const_string("v1", "x")
                .invoke(
                    "SmsManager.sendTextMessage",
                    receiver="v0",
                    args=("v1", "v1", "v1", "v1", "v1"),
                )
                .ret()
                .build()
            ]
        )
        model = extract_app(apk)
        assert perms.SEND_SMS in model.component("p/Svc").uses_permissions

    def test_transitive_tagging_through_call_chain(self):
        """Tags propagate from children to parents up to entry points."""
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",))
                .invoke("this.level1")
                .ret()
                .build(),
                MethodBuilder("level1").invoke("this.level2").ret().build(),
                MethodBuilder("level2")
                .invoke("LocationManager.getLastKnownLocation", receiver="v9", dest="v0")
                .ret()
                .build(),
            ]
        )
        model = extract_app(apk)
        assert perms.ACCESS_FINE_LOCATION in model.component("p/Svc").uses_permissions

    def test_unreachable_api_not_tagged(self):
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",)).ret().build(),
                MethodBuilder("orphan")
                .invoke("Camera.takePicture", receiver="v9")
                .ret()
                .build(),
            ]
        )
        model = extract_app(apk)
        assert perms.CAMERA not in model.component("p/Svc").uses_permissions

    def test_enforce_calling_permission_variant(self):
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v0", perms.READ_CONTACTS)
                .invoke("Context.enforceCallingPermission", args=("v0",))
                .ret()
                .build()
            ]
        )
        model = extract_app(apk)
        assert perms.READ_CONTACTS in model.component("p/Svc").permissions

    def test_component_without_class_empty(self):
        apk = Apk(
            Manifest(package="p", components=[ComponentDecl("Ghost", S)]),
            DexProgram([]),
        )
        callgraph = CallGraph(apk)
        values = ValueAnalysis(callgraph)
        result = PermissionExtraction(apk, callgraph, values).run()
        assert result["p/Ghost"].exposed == frozenset()


class TestIntentAttributeExtraction:
    def _extract_intent(self, builder_ops):
        b = MethodBuilder("onStartCommand", params=("p0",))
        b.new_instance("v0", "Intent")
        builder_ops(b)
        b.invoke("Context.startService", args=("v0",))
        b.ret()
        model = extract_app(service_app([b.build()]))
        assert len(model.intents) >= 1
        return model.intents

    def test_set_data_and_type(self):
        def ops(b):
            b.const_string("v1", "content://media/images")
            b.const_string("v2", "image/png")
            b.invoke("Intent.setDataAndType", receiver="v0", args=("v1", "v2"))

        [intent] = self._extract_intent(ops)
        assert intent.data_scheme == "content"
        assert intent.data_type == "image/png"

    def test_categories_collected_as_set(self):
        def ops(b):
            b.const_string("v1", "cat.ONE")
            b.invoke("Intent.addCategory", receiver="v0", args=("v1",))
            b.const_string("v2", "cat.TWO")
            b.invoke("Intent.addCategory", receiver="v0", args=("v2",))

        [intent] = self._extract_intent(ops)
        assert intent.categories == {"cat.ONE", "cat.TWO"}

    def test_multiple_targets_explode(self):
        def ops(b):
            b.const_string("v1", "T1")
            b.if_goto("v9", "set")
            b.const_string("v1", "T2")
            b.label("set")
            b.invoke("Intent.setClassName", receiver="v0", args=("v1",))

        intents = self._extract_intent(ops)
        assert {i.target for i in intents} == {"p/T1", "p/T2"}

    def test_addressed_kind_recorded(self):
        [intent] = self._extract_intent(lambda b: None)
        assert intent.addressed_kind is ComponentKind.SERVICE

    def test_unsent_intent_not_materialized(self):
        b = (
            MethodBuilder("onStartCommand", params=("p0",))
            .new_instance("v0", "Intent")
            .const_string("v1", "never.sent")
            .invoke("Intent.setAction", receiver="v0", args=("v1",))
            .ret()
        )
        model = extract_app(service_app([b.build()]))
        assert not model.intents


class TestResolverExtraction:
    def test_access_recorded_with_payload(self):
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",))
                .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v8")
                .const_string("v0", "content://x.y/items")
                .invoke("ContentResolver.update", args=("v0", "v8"))
                .ret()
                .build()
            ]
        )
        model = extract_app(apk)
        [access] = model.provider_accesses
        assert access.operation == "update"
        assert access.authority == "x.y"
        assert Resource.IMEI in access.payload
        # The sender gains an IMEI -> ICC path.
        assert PathModel(Resource.IMEI, Resource.ICC) in model.component(
            "p/Svc"
        ).paths

    def test_query_result_is_icc_tainted(self):
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v0", "content://x.y/items")
                .invoke("ContentResolver.query", args=("v0",), dest="v2")
                .invoke("Log.d", args=("v9", "v2"))
                .ret()
                .build()
            ]
        )
        model = extract_app(apk)
        assert PathModel(Resource.ICC, Resource.LOG) in model.component(
            "p/Svc"
        ).paths


class TestValueAnalysisStatics:
    def test_static_field_flow(self):
        apk = service_app(
            [
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v0", "static.ACTION")
                .sput("Config.action", "v0")
                .invoke("this.send")
                .ret()
                .build(),
                MethodBuilder("send")
                .new_instance("v0", "Intent")
                .sget("v1", "Config.action")
                .invoke("Intent.setAction", receiver="v0", args=("v1",))
                .invoke("Context.sendBroadcast", args=("v0",))
                .ret()
                .build(),
            ]
        )
        model = extract_app(apk)
        assert [i.action for i in model.intents] == ["static.ACTION"]


class TestSharedHelperAttribution:
    def test_intent_attributed_to_both_components(self):
        """A helper reachable from two components' entries attributes its
        ICC sends to both senders."""
        shared = DexClass(
            "Shared",
            superclass="Object",
            methods=[
                MethodBuilder("fire", params=("p0",))
                .new_instance("v0", "Intent")
                .const_string("v1", "shared.GO")
                .invoke("Intent.setAction", receiver="v0", args=("v1",))
                .invoke("Context.startService", args=("v0",))
                .ret()
                .build()
            ],
        )
        cmp_a = DexClass(
            "CmpA",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .invoke("Shared.fire", args=("p0",))
                .ret()
                .build()
            ],
        )
        cmp_b = DexClass(
            "CmpB",
            superclass="Service",
            methods=[
                MethodBuilder("onStartCommand", params=("p0",))
                .invoke("Shared.fire", args=("p0",))
                .ret()
                .build()
            ],
        )
        apk = Apk(
            Manifest(
                package="p",
                components=[ComponentDecl("CmpA", A), ComponentDecl("CmpB", S)],
            ),
            DexProgram([shared, cmp_a, cmp_b]),
        )
        model = extract_app(apk)
        senders = {i.sender for i in model.intents}
        assert senders == {"p/CmpA", "p/CmpB"}
