"""End-to-end tests of AME on the paper's running example, plus targeted
tests for the value, taint, and permission analyses."""

import pytest

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.android.resources import Resource
from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core.model import PathModel
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.statics import extract_app, extract_bundle
from repro.statics.callgraph import CallGraph
from repro.statics.constprop import ValueAnalysis


class TestApp1Extraction:
    """Listing 1 -> Listing 4(a)."""

    def setup_method(self):
        self.model = extract_app(build_app1())

    def test_location_finder_path(self):
        lf = self.model.component("com.example.navigation/LocationFinder")
        assert PathModel(Resource.LOCATION, Resource.ICC) in lf.paths

    def test_location_finder_not_exported(self):
        lf = self.model.component("com.example.navigation/LocationFinder")
        assert not lf.exported
        assert not lf.intent_filters

    def test_intent_entity(self):
        [intent] = [
            i for i in self.model.intents
            if i.sender.endswith("LocationFinder")
        ]
        assert intent.action == "showLoc"
        assert intent.target is None  # implicit
        assert Resource.LOCATION in intent.extras
        assert "locationInfo" in intent.extra_keys

    def test_route_finder_receives_and_logs(self):
        rf = self.model.component("com.example.navigation/RouteFinder")
        assert PathModel(Resource.ICC, Resource.LOG) in rf.paths
        assert rf.exported  # public via its Intent filter


class TestApp2Extraction:
    """Listing 2 -> Listing 4(b)."""

    def setup_method(self):
        self.model = extract_app(build_app2())

    def test_icc_to_sms_path(self):
        ms = self.model.component("com.example.messenger/MessageSender")
        assert PathModel(Resource.ICC, Resource.SMS) in ms.paths

    def test_no_enforced_permissions(self):
        """hasPermission exists but is never called -- the vulnerability."""
        ms = self.model.component("com.example.messenger/MessageSender")
        assert not ms.permissions

    def test_exposed_sms_capability(self):
        ms = self.model.component("com.example.messenger/MessageSender")
        assert perms.SEND_SMS in ms.uses_permissions

    def test_enforced_when_check_is_called(self):
        """Uncommenting line 6 of Listing 2 makes the check reachable."""
        fixed = DexClass(
            "MessageSender",
            superclass="Service",
            methods=[
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .invoke("this.hasPermission", dest="v0")
                    .if_goto("v0", "send")
                    .ret()
                    .label("send")
                    .const_string("v1", "TEXT_MSG")
                    .invoke(
                        "Intent.getStringExtra",
                        receiver="p0", args=("v1",), dest="v2",
                    )
                    .invoke("this.sendTextMessage", args=("v2", "v2"))
                    .ret()
                    .build()
                ),
                (
                    MethodBuilder("sendTextMessage", params=("p0", "p1"))
                    .invoke("SmsManager.getDefault", dest="v0")
                    .invoke(
                        "SmsManager.sendTextMessage",
                        receiver="v0",
                        args=("p0", "p0", "p1", "p0", "p0"),
                    )
                    .ret()
                    .build()
                ),
                (
                    MethodBuilder("hasPermission")
                    .const_string("v0", perms.SEND_SMS)
                    .invoke(
                        "Context.checkCallingPermission", args=("v0",), dest="v1"
                    )
                    .ret("v1")
                    .build()
                ),
            ],
        )
        manifest = Manifest(
            package="fixed.messenger",
            uses_permissions=frozenset({perms.SEND_SMS}),
            components=[
                ComponentDecl("MessageSender", ComponentKind.SERVICE, exported=True)
            ],
        )
        model = extract_app(Apk(manifest, DexProgram([fixed])))
        ms = model.component("fixed.messenger/MessageSender")
        assert perms.SEND_SMS in ms.permissions


class TestMaliciousAppExtraction:
    def test_explicit_intent_with_forwarded_payload(self):
        model = extract_app(build_malicious_app())
        [intent] = model.intents
        assert intent.explicit
        assert intent.target == "com.example.messenger/MessageSender"
        assert Resource.ICC in intent.extras  # forwards received data

    def test_transit_path(self):
        model = extract_app(build_malicious_app())
        thief = model.component("com.evil.innocuous/Thief")
        assert PathModel(Resource.ICC, Resource.ICC) in thief.paths

    def test_no_permissions_needed(self):
        model = extract_app(build_malicious_app())
        assert not model.uses_permissions


class TestValueAnalysis:
    def test_string_disambiguation_generates_multiple_entities(self):
        """A conditionally assigned action yields one entity per value."""
        cls = DexClass(
            "Svc",
            superclass="Service",
            methods=[
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .new_instance("v0", "Intent")
                    .const_string("v1", "actionA")
                    .if_goto("v9", "setit")
                    .const_string("v1", "actionB")
                    .label("setit")
                    .invoke("Intent.setAction", receiver="v0", args=("v1",))
                    .invoke("Context.startService", args=("v0",))
                    .ret()
                    .build()
                ),
            ],
        )
        manifest = Manifest(
            package="p", components=[ComponentDecl("Svc", ComponentKind.SERVICE)]
        )
        model = extract_app(Apk(manifest, DexProgram([cls])))
        actions = sorted(i.action for i in model.intents)
        assert actions == ["actionA", "actionB"]

    def test_alias_through_heap_field(self):
        """An action stored through a heap field is found at the send site
        (the paper's on-demand alias analysis)."""
        cls = DexClass(
            "Svc",
            superclass="Service",
            methods=[
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .new_instance("v0", "Intent")
                    .iput("this", "pending", "v0")
                    .invoke("this.helper")
                    .ret()
                    .build()
                ),
                (
                    MethodBuilder("helper")
                    .iget("v0", "this", "pending")
                    .const_string("v1", "aliasedAction")
                    .invoke("Intent.setAction", receiver="v0", args=("v1",))
                    .invoke("Context.startService", args=("v0",))
                    .ret()
                    .build()
                ),
            ],
        )
        manifest = Manifest(
            package="p", components=[ComponentDecl("Svc", ComponentKind.SERVICE)]
        )
        model = extract_app(Apk(manifest, DexProgram([cls])))
        assert [i.action for i in model.intents] == ["aliasedAction"]

    def test_value_flows_through_internal_call_return(self):
        prog = DexProgram(
            [
                DexClass(
                    "Svc",
                    superclass="Service",
                    methods=[
                        (
                            MethodBuilder("onStartCommand", params=("p0",))
                            .invoke("this.makeAction", dest="v1")
                            .new_instance("v0", "Intent")
                            .invoke("Intent.setAction", receiver="v0", args=("v1",))
                            .invoke("Context.sendBroadcast", args=("v0",))
                            .ret()
                            .build()
                        ),
                        (
                            MethodBuilder("makeAction")
                            .const_string("v0", "returnedAction")
                            .ret("v0")
                            .build()
                        ),
                    ],
                )
            ]
        )
        manifest = Manifest(
            package="p", components=[ComponentDecl("Svc", ComponentKind.SERVICE)]
        )
        model = extract_app(Apk(manifest, prog))
        assert [i.action for i in model.intents] == ["returnedAction"]


class TestTaintCorners:
    def _service_app(self, methods):
        cls = DexClass("Svc", superclass="Service", methods=methods)
        manifest = Manifest(
            package="p", components=[ComponentDecl("Svc", ComponentKind.SERVICE)]
        )
        return Apk(manifest, DexProgram([cls]))

    def test_overwrite_kills_taint(self):
        """Flow sensitivity: re-assigning the register clears the taint."""
        apk = self._service_app(
            [
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .invoke(
                        "LocationManager.getLastKnownLocation",
                        receiver="v9", dest="v0",
                    )
                    .const_string("v0", "clean")
                    .invoke("Log.d", args=("v8", "v0"))
                    .ret()
                    .build()
                )
            ]
        )
        model = extract_app(apk)
        assert not model.component("p/Svc").paths

    def test_dead_code_leak_ignored(self):
        """A leak after an unconditional goto is not reported."""
        apk = self._service_app(
            [
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .invoke(
                        "LocationManager.getLastKnownLocation",
                        receiver="v9", dest="v0",
                    )
                    .goto("end")
                    .invoke("Log.d", args=("v8", "v0"))
                    .label("end")
                    .ret()
                    .build()
                )
            ]
        )
        model = extract_app(apk)
        assert not model.component("p/Svc").paths

    def test_branch_join_keeps_taint(self):
        """Taint survives a join where only one arm tainted the register
        (may-analysis, not path-sensitive)."""
        apk = self._service_app(
            [
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .const_string("v0", "clean")
                    .if_goto("v9", "log")
                    .invoke(
                        "LocationManager.getLastKnownLocation",
                        receiver="v9", dest="v0",
                    )
                    .label("log")
                    .invoke("Log.d", args=("v8", "v0"))
                    .ret()
                    .build()
                )
            ]
        )
        model = extract_app(apk)
        assert PathModel(Resource.LOCATION, Resource.LOG) in model.component(
            "p/Svc"
        ).paths

    def test_taint_through_helper_return(self):
        apk = self._service_app(
            [
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .invoke("this.fetch", dest="v0")
                    .invoke("SmsManager.getDefault", dest="v5")
                    .const_string("v6", "5551234")
                    .invoke(
                        "SmsManager.sendTextMessage",
                        receiver="v5",
                        args=("v6", "v6", "v0", "v6", "v6"),
                    )
                    .ret()
                    .build()
                ),
                (
                    MethodBuilder("fetch")
                    .invoke("TelephonyManager.getDeviceId", receiver="v9", dest="v0")
                    .ret("v0")
                    .build()
                ),
            ]
        )
        model = extract_app(apk)
        assert PathModel(Resource.IMEI, Resource.SMS) in model.component(
            "p/Svc"
        ).paths

    def test_taint_through_string_operations(self):
        apk = self._service_app(
            [
                (
                    MethodBuilder("onStartCommand", params=("p0",))
                    .invoke(
                        "LocationManager.getLastKnownLocation",
                        receiver="v9", dest="v0",
                    )
                    .invoke("Location.toString", receiver="v0", dest="v1")
                    .const_string("v2", "prefix: ")
                    .invoke("String.concat", receiver="v2", args=("v1",), dest="v3")
                    .invoke("Log.d", args=("v8", "v3"))
                    .ret()
                    .build()
                )
            ]
        )
        model = extract_app(apk)
        assert PathModel(Resource.LOCATION, Resource.LOG) in model.component(
            "p/Svc"
        ).paths


class TestBundleExtraction:
    def test_passive_intent_targets_resolved(self):
        """Algorithm 1: the result Intent of a startActivityForResult callee
        targets the original caller."""
        caller = DexClass(
            "Caller",
            superclass="Activity",
            methods=[
                (
                    MethodBuilder("onCreate", params=("p0",))
                    .new_instance("v0", "Intent")
                    .const_string("v1", "appb/Picker")
                    .invoke("Intent.setClassName", receiver="v0", args=("v1",))
                    .invoke("Context.startActivityForResult", args=("v0",))
                    .ret()
                    .build()
                ),
            ],
        )
        picker = DexClass(
            "Picker",
            superclass="Activity",
            methods=[
                (
                    MethodBuilder("onCreate", params=("p0",))
                    .new_instance("v0", "Intent")
                    .const_string("v1", "chosen")
                    .const_string("v2", "value")
                    .invoke("Intent.putExtra", receiver="v0", args=("v1", "v2"))
                    .invoke("Activity.setResult", args=("v0",))
                    .ret()
                    .build()
                ),
            ],
        )
        apk_a = Apk(
            Manifest(
                package="appa",
                components=[ComponentDecl("Caller", ComponentKind.ACTIVITY)],
            ),
            DexProgram([caller]),
        )
        apk_b = Apk(
            Manifest(
                package="appb",
                components=[
                    ComponentDecl("Picker", ComponentKind.ACTIVITY, exported=True)
                ],
            ),
            DexProgram([picker]),
        )
        bundle = extract_bundle([apk_a, apk_b])
        passive = [i for i in bundle.all_intents() if i.passive]
        assert len(passive) == 1
        assert passive[0].passive_targets == {"appa/Caller"}

    def test_bundle_stats(self):
        bundle = extract_bundle([build_app1(), build_app2()])
        stats = bundle.stats
        assert stats["apps"] == 2
        assert stats["components"] == 3
        assert stats["intent_filters"] == 1


class TestDynamicReceivers:
    def _apk(self):
        cls = DexClass(
            "Main",
            superclass="Activity",
            methods=[
                (
                    MethodBuilder("onCreate", params=("p0",))
                    .new_instance("v0", "DynReceiver")
                    .new_instance("v1", "IntentFilter")
                    .const_string("v2", "dyn.ACTION")
                    .invoke("IntentFilter.addAction", receiver="v1", args=("v2",))
                    .invoke("Context.registerReceiver", args=("v0", "v1"))
                    .ret()
                    .build()
                ),
            ],
        )
        recv = DexClass("DynReceiver", superclass="BroadcastReceiver")
        manifest = Manifest(
            package="p",
            components=[
                ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True),
                ComponentDecl("DynReceiver", ComponentKind.RECEIVER),
            ],
        )
        return Apk(manifest, DexProgram([cls, recv]))

    def test_default_extractor_misses_dynamic_filters(self):
        """SEPAR's published behavior: dynamic registration not handled."""
        model = extract_app(self._apk())
        recv = model.component("p/DynReceiver")
        assert not recv.intent_filters
        assert not recv.exported

    def test_extension_flag_captures_dynamic_filters(self):
        model = extract_app(self._apk(), handle_dynamic_receivers=True)
        recv = model.component("p/DynReceiver")
        assert any(
            f.dynamic and "dyn.ACTION" in f.actions for f in recv.intent_filters
        )
        assert recv.exported


class TestExtractionMetadata:
    def test_timing_recorded(self):
        model = extract_app(build_app1())
        assert model.extraction_seconds > 0

    def test_size_recorded(self):
        model = extract_app(build_app1())
        assert model.apk_size_kb > 0
