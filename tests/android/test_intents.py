"""Tests for Intent/IntentFilter matching and resolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.components import ComponentKind
from repro.android.intents import (
    CATEGORY_DEFAULT,
    Intent,
    IntentFilter,
    action_test,
    app_of,
    category_test,
    data_test,
    filter_matches,
    resolve_intent,
)


class FakeComponent:
    def __init__(self, name, app, exported=True, filters=()):
        self.name = name
        self.app = app
        self.exported = exported
        self.intent_filters = list(filters)


class TestFilterConstruction:
    def test_requires_action(self):
        with pytest.raises(ValueError):
            IntentFilter(actions=frozenset())

    def test_for_action_helper(self):
        f = IntentFilter.for_action("a", "b")
        assert f.actions == {"a", "b"}


class TestActionTest:
    def test_matching_action(self):
        f = IntentFilter.for_action("showLoc")
        assert action_test(Intent(sender="x", action="showLoc"), f)

    def test_non_matching_action(self):
        f = IntentFilter.for_action("showLoc")
        assert not action_test(Intent(sender="x", action="other"), f)

    def test_actionless_intent_passes(self):
        f = IntentFilter.for_action("showLoc")
        assert action_test(Intent(sender="x"), f)


class TestCategoryTest:
    def test_filter_superset_ok(self):
        f = IntentFilter(
            actions=frozenset({"a"}),
            categories=frozenset({CATEGORY_DEFAULT, "extra"}),
        )
        intent = Intent(sender="x", action="a", categories=frozenset({CATEGORY_DEFAULT}))
        assert category_test(intent, f)

    def test_intent_extra_category_fails(self):
        f = IntentFilter(actions=frozenset({"a"}))
        intent = Intent(sender="x", action="a", categories=frozenset({CATEGORY_DEFAULT}))
        assert not category_test(intent, f)

    def test_empty_categories_match(self):
        f = IntentFilter(actions=frozenset({"a"}))
        assert category_test(Intent(sender="x", action="a"), f)


class TestDataTest:
    def test_no_data_both_sides(self):
        f = IntentFilter(actions=frozenset({"a"}))
        assert data_test(Intent(sender="x", action="a"), f)

    def test_intent_data_filter_none_fails(self):
        f = IntentFilter(actions=frozenset({"a"}))
        assert not data_test(Intent(sender="x", action="a", data_scheme="http"), f)

    def test_filter_data_intent_none_fails(self):
        f = IntentFilter(
            actions=frozenset({"a"}), data_schemes=frozenset({"http"})
        )
        assert not data_test(Intent(sender="x", action="a"), f)

    def test_scheme_match(self):
        f = IntentFilter(
            actions=frozenset({"a"}), data_schemes=frozenset({"http", "https"})
        )
        assert data_test(Intent(sender="x", action="a", data_scheme="https"), f)
        assert not data_test(Intent(sender="x", action="a", data_scheme="ftp"), f)

    def test_mime_exact(self):
        f = IntentFilter(actions=frozenset({"a"}), data_types=frozenset({"text/plain"}))
        assert data_test(Intent(sender="x", action="a", data_type="text/plain"), f)

    def test_mime_wildcard_subtype(self):
        f = IntentFilter(actions=frozenset({"a"}), data_types=frozenset({"image/*"}))
        assert data_test(Intent(sender="x", action="a", data_type="image/png"), f)
        assert not data_test(Intent(sender="x", action="a", data_type="text/plain"), f)

    def test_mime_full_wildcard(self):
        f = IntentFilter(actions=frozenset({"a"}), data_types=frozenset({"*/*"}))
        assert data_test(Intent(sender="x", action="a", data_type="video/mp4"), f)

    def test_scheme_and_type_both_required(self):
        f = IntentFilter(
            actions=frozenset({"a"}),
            data_schemes=frozenset({"content"}),
            data_types=frozenset({"text/plain"}),
        )
        intent = Intent(
            sender="x", action="a", data_scheme="content", data_type="text/plain"
        )
        assert data_test(intent, f)
        assert not data_test(
            Intent(sender="x", action="a", data_scheme="content"), f
        )


class TestResolution:
    def setup_method(self):
        self.receiver = FakeComponent(
            "app2/Recv",
            "app2",
            filters=[IntentFilter.for_action("showLoc")],
        )
        self.private = FakeComponent(
            "app2/Private", "app2", exported=False,
            filters=[IntentFilter.for_action("showLoc")],
        )
        self.own = FakeComponent(
            "app1/Own", "app1", exported=False,
            filters=[IntentFilter.for_action("showLoc")],
        )

    def test_implicit_resolves_to_exported_matching(self):
        intent = Intent(sender="app1/Sender", action="showLoc")
        matches = resolve_intent(intent, [self.receiver, self.private, self.own])
        assert {c.name for c in matches} == {"app2/Recv", "app1/Own"}

    def test_explicit_resolves_to_named(self):
        intent = Intent(sender="app1/Sender", target="app2/Recv", action="anything")
        matches = resolve_intent(intent, [self.receiver, self.private])
        assert [c.name for c in matches] == ["app2/Recv"]

    def test_explicit_private_cross_app_blocked(self):
        intent = Intent(sender="app1/Sender", target="app2/Private")
        assert resolve_intent(intent, [self.private]) == []

    def test_explicit_private_same_app_ok(self):
        intent = Intent(sender="app1/Sender", target="app1/Own")
        assert resolve_intent(intent, [self.own]) == [self.own]

    def test_hijack_scenario(self):
        """A malicious exported component with a matching filter intercepts
        an implicit Intent meant for a sibling component (the paper's
        Intent-hijack vulnerability)."""
        mal = FakeComponent(
            "evil/Thief", "evil", filters=[IntentFilter.for_action("showLoc")]
        )
        intent = Intent(sender="app1/LocationFinder", action="showLoc")
        matches = resolve_intent(intent, [self.own, mal])
        assert mal in matches


class TestDefaultCategory:
    """Implicit Activity resolution requires CATEGORY_DEFAULT on the filter
    (official startActivity semantics); Services/Receivers are exempt, as
    are kind-less components (the detector's spec-level view)."""

    @staticmethod
    def activity(name, app, categories=frozenset(), **kw):
        c = FakeComponent(
            name, app,
            filters=[IntentFilter(
                actions=frozenset({"showLoc"}), categories=categories,
            )],
            **kw,
        )
        c.kind = ComponentKind.ACTIVITY
        return c

    def test_activity_without_default_not_resolved(self):
        act = self.activity("app2/View", "app2")
        intent = Intent(sender="app1/Sender", action="showLoc")
        assert resolve_intent(intent, [act]) == []

    def test_activity_with_default_resolved(self):
        act = self.activity(
            "app2/View", "app2", categories=frozenset({CATEGORY_DEFAULT})
        )
        intent = Intent(sender="app1/Sender", action="showLoc")
        assert resolve_intent(intent, [act]) == [act]

    def test_default_not_required_on_intent_itself(self):
        """startActivity adds DEFAULT to the *query*, not the Intent object:
        an Intent without categories still matches a DEFAULT-only filter."""
        act = self.activity(
            "app2/View", "app2", categories=frozenset({CATEGORY_DEFAULT})
        )
        intent = Intent(sender="app1/Sender", action="showLoc",
                        categories=frozenset())
        assert resolve_intent(intent, [act]) == [act]

    def test_explicit_activity_exempt(self):
        act = self.activity("app2/View", "app2")
        intent = Intent(sender="app1/Sender", target="app2/View")
        assert resolve_intent(intent, [act]) == [act]

    def test_service_exempt(self):
        svc = FakeComponent(
            "app2/Svc", "app2", filters=[IntentFilter.for_action("showLoc")]
        )
        svc.kind = ComponentKind.SERVICE
        intent = Intent(sender="app1/Sender", action="showLoc")
        assert resolve_intent(intent, [svc]) == [svc]

    def test_kindless_component_exempt(self):
        comp = FakeComponent(
            "app2/Spec", "app2", filters=[IntentFilter.for_action("showLoc")]
        )
        intent = Intent(sender="app1/Sender", action="showLoc")
        assert resolve_intent(intent, [comp]) == [comp]

    def test_second_filter_with_default_matches(self):
        """Only DEFAULT-declaring filters are consulted, but any one of a
        component's filters may supply the match."""
        act = self.activity("app2/View", "app2")
        act.intent_filters.append(
            IntentFilter(
                actions=frozenset({"showLoc"}),
                categories=frozenset({CATEGORY_DEFAULT}),
            )
        )
        intent = Intent(sender="app1/Sender", action="showLoc")
        assert resolve_intent(intent, [act]) == [act]


class TestHelpers:
    def test_app_of(self):
        assert app_of("pkg/Cmp") == "pkg"
        assert app_of("bare") == "bare"

    def test_with_target(self):
        i = Intent(sender="a/b", action="x").with_target("c/d")
        assert i.explicit and i.target == "c/d" and i.action == "x"


@given(
    action=st.sampled_from(["a1", "a2", None]),
    filter_actions=st.sets(st.sampled_from(["a1", "a2", "a3"]), min_size=1),
    cats=st.sets(st.sampled_from(["c1", "c2"]), max_size=2),
    filter_cats=st.sets(st.sampled_from(["c1", "c2", "c3"]), max_size=3),
)
@settings(max_examples=100, deadline=None)
def test_filter_matches_is_conjunction(action, filter_actions, cats, filter_cats):
    intent = Intent(sender="x", action=action, categories=frozenset(cats))
    filt = IntentFilter(
        actions=frozenset(filter_actions), categories=frozenset(filter_cats)
    )
    expected = (
        (action is None or action in filter_actions)
        and set(cats) <= set(filter_cats)
    )
    assert filter_matches(intent, filt) == expected
