"""Tests for resources, permissions, components, manifests, and APKs."""

import pytest

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.android.resources import Resource, SOURCES, SINKS, is_sink, is_source
from repro.dex import DexClass, DexProgram, MethodBuilder


class TestResources:
    def test_source_count(self):
        # 13 canonical sources plus the ICC augmentation.
        assert len(SOURCES) == 14
        assert Resource.ICC in SOURCES

    def test_sink_count(self):
        # 5 canonical sinks plus the ICC augmentation.
        assert len(SINKS) == 6
        assert Resource.ICC in SINKS

    def test_predicates(self):
        assert is_source(Resource.LOCATION)
        assert not is_sink(Resource.LOCATION)
        assert is_sink(Resource.SMS)
        assert is_source(Resource.ICC) and is_sink(Resource.ICC)


class TestPermissions:
    def test_api_map_lookup(self):
        required = perms.permissions_for_api("SmsManager.sendTextMessage")
        assert perms.SEND_SMS in required

    def test_unknown_api_unguarded(self):
        assert perms.permissions_for_api("Widget.frobnicate") == frozenset()

    def test_resource_permission(self):
        assert perms.permission_for_resource(Resource.LOCATION) == (
            perms.ACCESS_FINE_LOCATION
        )
        assert perms.permission_for_resource(Resource.ICC) is None

    def test_protection_levels(self):
        assert perms.protection_level(perms.SEND_SMS).value == "dangerous"
        assert perms.protection_level(perms.INTERNET).value == "normal"
        assert perms.protection_level("com.example.UNKNOWN").value == "normal"

    def test_every_source_api_has_resource(self):
        for sig in perms.SOURCE_API_MAP:
            assert is_source(perms.SOURCE_API_MAP[sig])

    def test_every_sink_api_has_sink_resource(self):
        for sig, (resource, _) in perms.SINK_API_MAP.items():
            assert is_sink(resource)


class TestComponents:
    def test_provider_rejects_filters(self):
        with pytest.raises(ValueError):
            ComponentDecl(
                "P",
                ComponentKind.PROVIDER,
                intent_filters=[IntentFilter.for_action("a")],
            )

    def test_public_by_filter(self):
        c = ComponentDecl(
            "S", ComponentKind.SERVICE,
            intent_filters=[IntentFilter.for_action("a")],
        )
        assert c.is_public

    def test_private_by_default(self):
        assert not ComponentDecl("S", ComponentKind.SERVICE).is_public

    def test_exported_attribute_wins(self):
        c = ComponentDecl(
            "S", ComponentKind.SERVICE, exported=False,
            intent_filters=[IntentFilter.for_action("a")],
        )
        assert not c.is_public
        assert ComponentDecl("T", ComponentKind.SERVICE, exported=True).is_public


class TestManifest:
    def make(self):
        return Manifest(
            package="com.example.app",
            uses_permissions=frozenset({perms.SEND_SMS}),
            components=[
                ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True),
                ComponentDecl("Worker", ComponentKind.SERVICE),
            ],
        )

    def test_lookup(self):
        m = self.make()
        assert m.component("Main").kind is ComponentKind.ACTIVITY
        with pytest.raises(KeyError):
            m.component("Nope")

    def test_qualified(self):
        m = self.make()
        assert m.qualified(m.component("Main")) == "com.example.app/Main"

    def test_public_components(self):
        m = self.make()
        assert [c.name for c in m.public_components()] == ["Main"]

    def test_kind_filter(self):
        m = self.make()
        assert [c.name for c in m.components_of_kind(ComponentKind.SERVICE)] == [
            "Worker"
        ]

    def test_duplicate_component_rejected(self):
        with pytest.raises(ValueError):
            Manifest(
                package="p",
                components=[
                    ComponentDecl("A", ComponentKind.ACTIVITY),
                    ComponentDecl("A", ComponentKind.SERVICE),
                ],
            )


class TestApk:
    def test_size_estimate(self):
        method = MethodBuilder("onCreate", params=("p0",)).ret().build()
        program = DexProgram([DexClass("Main", methods=[method])])
        apk = Apk(Manifest(package="p", components=[]), program)
        assert apk.size_kb > 120

    def test_component_class_lookup(self):
        program = DexProgram([DexClass("Main")])
        apk = Apk(Manifest(package="p", components=[]), program)
        assert apk.component_class("Main") is not None
        assert apk.component_class("Ghost") is None
