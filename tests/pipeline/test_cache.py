"""Tests for the content-addressed pipeline cache."""

import json

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.pipeline import cache as cache_mod
from repro.pipeline.cache import (
    NullCache,
    PipelineCache,
    canonical,
    canonical_json,
    content_hash,
    framework_fingerprint,
)


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(None) is None
        assert canonical(True) is True

    def test_sets_sorted(self):
        assert canonical(frozenset({"b", "a", "c"})) == ["a", "b", "c"]

    def test_dict_keys_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_dataclass_fields_covered(self):
        apk = build_app1()
        encoded = canonical_json(apk)
        assert apk.package in encoded
        assert '"__dataclass__":"Apk"' in encoded

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_hash_differs_on_content(self):
        assert content_hash(build_app1()) != content_hash(build_app2())

    def test_hash_stable_for_equal_content(self):
        assert content_hash(build_app1()) == content_hash(build_app1())

    def test_fingerprint_is_hex_digest(self):
        fp = framework_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestPipelineCache:
    def test_miss_then_hit(self, tmp_path):
        cache = PipelineCache(tmp_path)
        assert cache.get("ns", "k" * 64) is None
        cache.put("ns", "k" * 64, {"value": 1})
        assert cache.get("ns", "k" * 64) == {"value": 1}
        assert cache.accounting.misses["ns"] == 1
        assert cache.accounting.hits["ns"] == 1

    def test_persists_across_instances(self, tmp_path):
        PipelineCache(tmp_path).put("ns", "a" * 64, {"x": [1, 2]})
        fresh = PipelineCache(tmp_path)
        assert fresh.get("ns", "a" * 64) == {"x": [1, 2]}

    def test_stale_version_invalidated(self, tmp_path):
        cache = PipelineCache(tmp_path)
        key = "b" * 64
        cache.put("ns", key, {"x": 1})
        path = cache._path("ns", key)
        envelope = json.loads(path.read_text())
        envelope["version"] = cache_mod.CACHE_FORMAT_VERSION - 1
        path.write_text(json.dumps(envelope))
        assert cache.get("ns", key) is None
        assert cache.accounting.invalidations["ns"] == 1
        assert cache.accounting.misses["ns"] == 1
        assert not path.exists()  # stale entry removed

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = PipelineCache(tmp_path)
        key = "c" * 64
        path = cache._path("ns", key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get("ns", key) is None
        assert cache.accounting.misses["ns"] == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = PipelineCache(tmp_path)
        cache.put("ns", "d" * 64, {"x": 1})
        cache.put("other", "e" * 64, {"y": 2})
        assert cache.clear() == 2
        assert cache.get("ns", "d" * 64) is None

    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "env"))
        assert cache_mod.default_cache_dir() == tmp_path / "env"


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put("ns", "f" * 64, {"x": 1})
        assert cache.get("ns", "f" * 64) is None
        assert cache.accounting.misses["ns"] == 1
        assert cache.clear() == 0


class TestCanonicalKeyTypes:
    """Regression: dict keys used to be stringified (``str(k)``), so the
    distinct inputs ``{1: v}`` and ``{"1": v}`` collided onto one cache
    key -- two different computations sharing one entry."""

    def test_int_and_str_keys_do_not_collide(self):
        assert content_hash({1: "a"}) != content_hash({"1": "a"})

    def test_bool_and_str_keys_do_not_collide(self):
        assert content_hash({True: "a"}) != content_hash({"True": "a"})

    def test_bool_and_int_keys_do_not_collide(self):
        # bool is an int subclass; type identity must still separate them.
        assert content_hash({True: "a"}) != content_hash({1: "a"})

    def test_str_key_dicts_keep_plain_form(self):
        # Persisted caches were keyed under the plain representation;
        # all-str dicts (every real key in the pipeline) must not change.
        assert canonical({"b": 1, "a": [2]}) == {"a": [2], "b": 1}

    def test_non_str_key_order_is_canonical(self):
        assert canonical_json({2: "x", 1: "y"}) == canonical_json(
            {1: "y", 2: "x"}
        )

    def test_distinct_key_types_hash_distinctly(self):
        seen = {
            content_hash({1: 0}),
            content_hash({"1": 0}),
            content_hash({1.5: 0}),
            content_hash({2: 0}),
        }
        assert len(seen) == 4


class TestFrameworkFingerprintCoverage:
    """Regression: the fingerprint used to omit ``repro.sat.fastsolver``
    (the default backend), ``repro.sat.tseitin`` and ``repro.sat.cnf`` --
    editing any of them silently served stale synthesis entries."""

    REQUIRED = [
        "repro.sat.cnf",
        "repro.sat.fastsolver",
        "repro.sat.solver",
        "repro.sat.tseitin",
        "repro.relational.translate",
        "repro.core.synthesis",
    ]

    @pytest.mark.parametrize("module_name", REQUIRED)
    def test_fingerprint_changes_when_module_source_changes(
        self, module_name, monkeypatch
    ):
        import inspect
        import sys

        framework_fingerprint.cache_clear()
        baseline = framework_fingerprint()

        real_getsource = inspect.getsource

        def patched(obj):
            if getattr(obj, "__name__", None) == module_name:
                return real_getsource(obj) + "\n# edited\n"
            return real_getsource(obj)

        monkeypatch.setattr(inspect, "getsource", patched)
        framework_fingerprint.cache_clear()
        try:
            assert framework_fingerprint() != baseline, (
                f"{module_name} is not covered by framework_fingerprint()"
            )
        finally:
            framework_fingerprint.cache_clear()

    def test_fingerprint_stable_without_edits(self):
        framework_fingerprint.cache_clear()
        first = framework_fingerprint()
        framework_fingerprint.cache_clear()
        assert framework_fingerprint() == first


class TestAtomicPut:
    """Regression: ``put`` wrote through a fixed ``<key>.tmp`` path shared
    by every concurrent writer of the key, so two workers could interleave
    truncate/write and rename a torn file into place."""

    def test_tmp_names_are_unique_per_attempt(self, tmp_path, monkeypatch):
        import os as _os

        cache = PipelineCache(tmp_path)
        key = "a" * 64

        def exploding_replace(src, dst):
            raise OSError("injected: keep the tmp visible")

        monkeypatch.setattr(cache_mod.os, "replace", exploding_replace)
        # Interrupt the unlink cleanup too, so both writers' tmp files
        # survive for inspection -- with a shared fixed name the second
        # attempt would have reused (and clobbered) the first.
        monkeypatch.setattr(
            cache_mod.os, "unlink", lambda p: (_ for _ in ()).throw(OSError())
        )
        for _ in range(2):
            with pytest.raises(OSError):
                cache.put("ns", key, {"value": 1})
        tmp_files = list(cache._path("ns", key).parent.glob("*.tmp"))
        assert len(tmp_files) == 2
        assert len({p.name for p in tmp_files}) == 2

    def test_interrupted_write_never_visible_via_get(
        self, tmp_path, monkeypatch
    ):
        cache = PipelineCache(tmp_path)
        key = "b" * 64

        monkeypatch.setattr(
            cache_mod.os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("torn")),
        )
        with pytest.raises(OSError):
            cache.put("ns", key, {"value": 1})
        monkeypatch.undo()
        # The half-written attempt must be invisible: a reader addressing
        # the key sees a miss, never a partial payload.
        assert cache.get("ns", key) is None
        # And the failed attempt's tmp file was cleaned up.
        assert list(cache._path("ns", key).parent.glob("*.tmp")) == []

    def test_concurrent_writers_never_expose_torn_entries(self, tmp_path):
        import threading

        cache = PipelineCache(tmp_path)
        key = "c" * 64
        payload = {"value": "x" * 4096}
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                cache.put("ns", key, payload)

        def reader():
            while not stop.is_set():
                got = cache.get("ns", key)
                if got is not None and got != payload:
                    errors.append(got)

        threads = [threading.Thread(target=writer) for _ in range(3)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        import time as _time

        _time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []


class TestMemoryCache:
    def test_round_trip_and_metrics(self):
        cache = cache_mod.MemoryCache()
        assert cache.get("ns", "k") is None
        cache.put("ns", "k", {"value": 1})
        assert cache.get("ns", "k") == {"value": 1}
        assert cache.accounting.misses["ns"] == 1
        assert cache.accounting.hits["ns"] == 1

    def test_payload_isolated_from_caller_mutation(self):
        cache = cache_mod.MemoryCache()
        payload = {"scenarios": [1, 2]}
        cache.put("ns", "k", payload)
        payload["scenarios"].append(3)
        assert cache.get("ns", "k") == {"scenarios": [1, 2]}
        got = cache.get("ns", "k")
        got["scenarios"].append(4)
        assert cache.get("ns", "k") == {"scenarios": [1, 2]}

    def test_lru_eviction(self):
        cache = cache_mod.MemoryCache(max_entries=2)
        cache.put("ns", "a", {"v": 1})
        cache.put("ns", "b", {"v": 2})
        assert cache.get("ns", "a") == {"v": 1}  # refresh a
        cache.put("ns", "c", {"v": 3})  # evicts b (least recent)
        assert cache.get("ns", "b") is None
        assert cache.get("ns", "a") == {"v": 1}
        assert cache.get("ns", "c") == {"v": 3}
        assert len(cache) == 2

    def test_rejects_degraded_payloads(self):
        cache = cache_mod.MemoryCache()
        cache.put("ns", "k", {"value": 1, "incomplete": True})
        assert cache.get("ns", "k") is None
        assert cache.accounting.rejections["ns"] == 1

    def test_clear(self):
        cache = cache_mod.MemoryCache()
        cache.put("ns", "a", {"v": 1})
        cache.put("other", "b", {"v": 2})
        assert cache.clear() == 2
        assert len(cache) == 0
