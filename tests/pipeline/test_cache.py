"""Tests for the content-addressed pipeline cache."""

import json

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.pipeline import cache as cache_mod
from repro.pipeline.cache import (
    NullCache,
    PipelineCache,
    canonical,
    canonical_json,
    content_hash,
    framework_fingerprint,
)


class TestCanonical:
    def test_primitives_pass_through(self):
        assert canonical(3) == 3
        assert canonical("x") == "x"
        assert canonical(None) is None
        assert canonical(True) is True

    def test_sets_sorted(self):
        assert canonical(frozenset({"b", "a", "c"})) == ["a", "b", "c"]

    def test_dict_keys_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_dataclass_fields_covered(self):
        apk = build_app1()
        encoded = canonical_json(apk)
        assert apk.package in encoded
        assert '"__dataclass__":"Apk"' in encoded

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_hash_differs_on_content(self):
        assert content_hash(build_app1()) != content_hash(build_app2())

    def test_hash_stable_for_equal_content(self):
        assert content_hash(build_app1()) == content_hash(build_app1())

    def test_fingerprint_is_hex_digest(self):
        fp = framework_fingerprint()
        assert len(fp) == 64
        int(fp, 16)


class TestPipelineCache:
    def test_miss_then_hit(self, tmp_path):
        cache = PipelineCache(tmp_path)
        assert cache.get("ns", "k" * 64) is None
        cache.put("ns", "k" * 64, {"value": 1})
        assert cache.get("ns", "k" * 64) == {"value": 1}
        assert cache.accounting.misses["ns"] == 1
        assert cache.accounting.hits["ns"] == 1

    def test_persists_across_instances(self, tmp_path):
        PipelineCache(tmp_path).put("ns", "a" * 64, {"x": [1, 2]})
        fresh = PipelineCache(tmp_path)
        assert fresh.get("ns", "a" * 64) == {"x": [1, 2]}

    def test_stale_version_invalidated(self, tmp_path):
        cache = PipelineCache(tmp_path)
        key = "b" * 64
        cache.put("ns", key, {"x": 1})
        path = cache._path("ns", key)
        envelope = json.loads(path.read_text())
        envelope["version"] = cache_mod.CACHE_FORMAT_VERSION - 1
        path.write_text(json.dumps(envelope))
        assert cache.get("ns", key) is None
        assert cache.accounting.invalidations["ns"] == 1
        assert cache.accounting.misses["ns"] == 1
        assert not path.exists()  # stale entry removed

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = PipelineCache(tmp_path)
        key = "c" * 64
        path = cache._path("ns", key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get("ns", key) is None
        assert cache.accounting.misses["ns"] == 1

    def test_clear_removes_entries(self, tmp_path):
        cache = PipelineCache(tmp_path)
        cache.put("ns", "d" * 64, {"x": 1})
        cache.put("other", "e" * 64, {"y": 2})
        assert cache.clear() == 2
        assert cache.get("ns", "d" * 64) is None

    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cache_mod.CACHE_DIR_ENV, str(tmp_path / "env"))
        assert cache_mod.default_cache_dir() == tmp_path / "env"


class TestNullCache:
    def test_never_stores(self):
        cache = NullCache()
        cache.put("ns", "f" * 64, {"x": 1})
        assert cache.get("ns", "f" * 64) is None
        assert cache.accounting.misses["ns"] == 1
        assert cache.clear() == 0
