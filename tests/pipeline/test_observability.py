"""Observability through the pipeline: run-report round-trips carrying
spans/metrics/cost, attach_observability, traced end-to-end runs, and
cross-process span propagation under both pool start methods."""

import importlib.util
import multiprocessing
import os
import pathlib

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.obs import (
    NULL_COST_LEDGER,
    NULL_METRICS,
    NULL_TRACER,
    TRACE_ENV,
    CostLedger,
    InMemoryTracer,
    MetricsRegistry,
    enable_tracing,
    set_cost_ledger,
    set_metrics,
    set_tracer,
)
from repro.obs.trace import read_trace
from repro.pipeline import (
    AnalysisPipeline,
    NullCache,
    RunReport,
    attach_observability,
)


def check_trace_integrity(path, expect_roots=1):
    """Run the CI trace checker (tools/check_trace_integrity.py) in-process."""
    tool = (
        pathlib.Path(__file__).resolve().parents[2]
        / "tools"
        / "check_trace_integrity.py"
    )
    spec = importlib.util.spec_from_file_location("check_trace_integrity", tool)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.check_trace(str(path), expect_roots=expect_roots)


@pytest.fixture
def observed():
    """Install a collecting tracer+registry; restore the no-ops after."""
    tracer = InMemoryTracer()
    registry = MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(registry)
    yield tracer, registry
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


class TestRunReportRoundTrip:
    def test_spans_and_metrics_survive_serialization(self):
        report = RunReport(jobs=2)
        report.add_stage("extract", 1.5)
        report.spans = {
            "pipeline.extract": {
                "count": 1, "total_seconds": 1.5,
                "self_seconds": 0.2, "max_seconds": 1.5,
            }
        }
        report.metrics = {
            "sat.conflicts": {"type": "counter", "value": 7},
            "ame.cfg_count": {
                "type": "histogram", "count": 2, "sum": 10.0,
                "min": 3, "max": 7, "mean": 5.0,
            },
        }
        restored = RunReport.loads(report.dumps())
        assert restored.spans == report.spans
        assert restored.metrics == report.metrics
        assert restored.to_dict() == report.to_dict()

    def test_fields_default_empty_for_old_reports(self):
        # Reports written before observability existed must still load.
        report = RunReport(jobs=1)
        data = report.to_dict()
        del data["spans"], data["metrics"]
        import json

        restored = RunReport.loads(json.dumps(data))
        assert restored.spans == {} and restored.metrics == {}


class TestAttachObservability:
    def test_folds_tracer_and_registry_into_report(self, observed):
        tracer, registry = observed
        with tracer.span("work"):
            pass
        registry.counter("sat.solver_calls").inc(3)
        report = attach_observability(RunReport(jobs=1))
        assert report.spans["work"]["count"] == 1
        assert report.metrics["sat.solver_calls"]["value"] == 3

    def test_noop_when_disabled(self):
        # Default no-op tracer/registry: the report stays untouched.
        report = attach_observability(RunReport(jobs=1))
        assert report.spans == {} and report.metrics == {}

    def test_reads_trace_file_when_given(self, tmp_path, observed):
        tracer, _ = observed
        with tracer.span("recorded"):
            pass
        from repro.obs.trace import write_trace

        path = tmp_path / "t.jsonl"
        write_trace(str(path), tracer.records)
        report = attach_observability(RunReport(jobs=1), trace_path=str(path))
        assert "recorded" in report.spans


class TestTracedPipelineRun:
    def test_spans_cover_every_stage_and_synthesis_call(self, observed):
        # Per-signature mode: this test pins the per-(bundle, signature)
        # span topology; the shared-encoding worker span
        # (pipeline.synthesize_bundle) is covered by the CLI trace test.
        tracer, registry = observed
        apks = [build_app1(), build_app2()]
        pipeline = AnalysisPipeline(
            jobs=1, scenarios_per_signature=2, shared_encoding=False
        )
        result = pipeline.run([apks])
        names = {r.name for r in tracer.records}
        # Every stage...
        for stage in (
            "pipeline.run", "pipeline.extract", "pipeline.synthesis",
            "pipeline.assemble",
        ):
            assert stage in names
        # ...every per-app extraction and per-(bundle, signature) call.
        per_app = [r for r in tracer.records if r.name == "pipeline.extract_app"]
        per_sig = [r for r in tracer.records if r.name == "pipeline.synthesize"]
        assert len(per_app) == 2
        assert len(per_sig) == len(pipeline.signature_names)
        # The engine's inner spans nest under the worker span.
        sig_ids = {r.span_id for r in per_sig}
        inner = [r for r in tracer.records if r.name == "ase.signature"]
        assert inner and all(r.parent_id in sig_ids for r in inner)
        # Aggregates landed in the run report, metrics included.
        report = result.run_report
        assert report.spans["pipeline.synthesize"]["count"] == len(per_sig)
        assert report.metrics["ame.apps_extracted"]["value"] == 2
        assert registry.counter("ase.signature_runs").value == len(per_sig)

    def test_observability_does_not_change_findings(self, observed):
        """Byte-identity guard: tracing, metrics, AND cost attribution all
        enabled must not change analysis output at all."""
        import json

        apks = [build_app1(), build_app2()]
        ledger = CostLedger()
        prev_ledger = set_cost_ledger(ledger)
        try:
            observed_result = AnalysisPipeline(
                jobs=1, scenarios_per_signature=2
            ).run([apks])
        finally:
            set_cost_ledger(prev_ledger)
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
        set_cost_ledger(NULL_COST_LEDGER)
        plain_result = AnalysisPipeline(
            jobs=1, scenarios_per_signature=2
        ).run([apks])
        assert json.dumps(
            observed_result.findings_dict(), sort_keys=True
        ) == json.dumps(plain_result.findings_dict(), sort_keys=True)
        # Attribution actually happened -- identity wasn't vacuous.
        assert ledger.totals()["cache_misses"] > 0


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
class TestCrossProcessPropagation:
    """Worker spans must join the orchestrator's trace whether workers
    inherit state (fork) or start from a fresh interpreter (spawn)."""

    def _traced_parallel_run(self, tmp_path, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {start_method!r} unavailable")
        path = tmp_path / "t.jsonl"
        tracer = enable_tracing(str(path))
        try:
            AnalysisPipeline(
                jobs=2,
                cache=NullCache(),
                scenarios_per_signature=2,
                start_method=start_method,
            ).run([[build_app1(), build_app2()]])
        finally:
            set_tracer(NULL_TRACER)
            tracer.close()
            os.environ.pop(TRACE_ENV, None)
        return read_trace(str(path))

    def test_worker_spans_parent_under_dispatch_span(
        self, tmp_path, start_method
    ):
        records = self._traced_parallel_run(tmp_path, start_method)
        by_id = {r.span_id: r for r in records}

        # Exactly one root: the orchestrator's pipeline.run span.
        roots = [r for r in records if r.parent_id is None]
        assert [r.name for r in roots] == ["pipeline.run"]
        assert roots[0].pid == os.getpid()

        # Work really crossed a process boundary...
        worker_spans = [r for r in records if r.pid != os.getpid()]
        assert worker_spans, "no spans from worker processes"

        # ...and every worker task span resolves to the orchestrator's
        # dispatch stage span, carrying the run's trace id.
        trace_id = roots[0].trace_id
        assert trace_id
        for record in worker_spans:
            assert record.trace_id == trace_id
            top = record
            while by_id[top.parent_id].pid != os.getpid():
                top = by_id[top.parent_id]
            dispatch = by_id[top.parent_id]
            assert dispatch.name in ("pipeline.extract", "pipeline.synthesis")

        # The CI checker agrees: no orphans, one root, one trace.
        assert check_trace_integrity(tmp_path / "t.jsonl") == []

    def test_every_span_carries_the_single_trace_id(
        self, tmp_path, start_method
    ):
        records = self._traced_parallel_run(tmp_path, start_method)
        trace_ids = {r.trace_id for r in records}
        assert len(trace_ids) == 1
        assert None not in trace_ids
