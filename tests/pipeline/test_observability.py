"""Observability through the pipeline: run-report round-trips carrying
spans/metrics, attach_observability, and traced end-to-end runs."""

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    InMemoryTracer,
    MetricsRegistry,
    set_metrics,
    set_tracer,
)
from repro.pipeline import AnalysisPipeline, RunReport, attach_observability


@pytest.fixture
def observed():
    """Install a collecting tracer+registry; restore the no-ops after."""
    tracer = InMemoryTracer()
    registry = MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(registry)
    yield tracer, registry
    set_tracer(prev_tracer)
    set_metrics(prev_metrics)


class TestRunReportRoundTrip:
    def test_spans_and_metrics_survive_serialization(self):
        report = RunReport(jobs=2)
        report.add_stage("extract", 1.5)
        report.spans = {
            "pipeline.extract": {
                "count": 1, "total_seconds": 1.5,
                "self_seconds": 0.2, "max_seconds": 1.5,
            }
        }
        report.metrics = {
            "sat.conflicts": {"type": "counter", "value": 7},
            "ame.cfg_count": {
                "type": "histogram", "count": 2, "sum": 10.0,
                "min": 3, "max": 7, "mean": 5.0,
            },
        }
        restored = RunReport.loads(report.dumps())
        assert restored.spans == report.spans
        assert restored.metrics == report.metrics
        assert restored.to_dict() == report.to_dict()

    def test_fields_default_empty_for_old_reports(self):
        # Reports written before observability existed must still load.
        report = RunReport(jobs=1)
        data = report.to_dict()
        del data["spans"], data["metrics"]
        import json

        restored = RunReport.loads(json.dumps(data))
        assert restored.spans == {} and restored.metrics == {}


class TestAttachObservability:
    def test_folds_tracer_and_registry_into_report(self, observed):
        tracer, registry = observed
        with tracer.span("work"):
            pass
        registry.counter("sat.solver_calls").inc(3)
        report = attach_observability(RunReport(jobs=1))
        assert report.spans["work"]["count"] == 1
        assert report.metrics["sat.solver_calls"]["value"] == 3

    def test_noop_when_disabled(self):
        # Default no-op tracer/registry: the report stays untouched.
        report = attach_observability(RunReport(jobs=1))
        assert report.spans == {} and report.metrics == {}

    def test_reads_trace_file_when_given(self, tmp_path, observed):
        tracer, _ = observed
        with tracer.span("recorded"):
            pass
        from repro.obs.trace import write_trace

        path = tmp_path / "t.jsonl"
        write_trace(str(path), tracer.records)
        report = attach_observability(RunReport(jobs=1), trace_path=str(path))
        assert "recorded" in report.spans


class TestTracedPipelineRun:
    def test_spans_cover_every_stage_and_synthesis_call(self, observed):
        # Per-signature mode: this test pins the per-(bundle, signature)
        # span topology; the shared-encoding worker span
        # (pipeline.synthesize_bundle) is covered by the CLI trace test.
        tracer, registry = observed
        apks = [build_app1(), build_app2()]
        pipeline = AnalysisPipeline(
            jobs=1, scenarios_per_signature=2, shared_encoding=False
        )
        result = pipeline.run([apks])
        names = {r.name for r in tracer.records}
        # Every stage...
        for stage in (
            "pipeline.run", "pipeline.extract", "pipeline.synthesis",
            "pipeline.assemble",
        ):
            assert stage in names
        # ...every per-app extraction and per-(bundle, signature) call.
        per_app = [r for r in tracer.records if r.name == "pipeline.extract_app"]
        per_sig = [r for r in tracer.records if r.name == "pipeline.synthesize"]
        assert len(per_app) == 2
        assert len(per_sig) == len(pipeline.signature_names)
        # The engine's inner spans nest under the worker span.
        sig_ids = {r.span_id for r in per_sig}
        inner = [r for r in tracer.records if r.name == "ase.signature"]
        assert inner and all(r.parent_id in sig_ids for r in inner)
        # Aggregates landed in the run report, metrics included.
        report = result.run_report
        assert report.spans["pipeline.synthesize"]["count"] == len(per_sig)
        assert report.metrics["ame.apps_extracted"]["value"] == 2
        assert registry.counter("ase.signature_runs").value == len(per_sig)

    def test_observability_does_not_change_findings(self, observed):
        apks = [build_app1(), build_app2()]
        observed_result = AnalysisPipeline(
            jobs=1, scenarios_per_signature=2
        ).run([apks])
        set_tracer(NULL_TRACER)
        set_metrics(NULL_METRICS)
        plain_result = AnalysisPipeline(
            jobs=1, scenarios_per_signature=2
        ).run([apks])
        assert (
            observed_result.findings_dict() == plain_result.findings_dict()
        )
