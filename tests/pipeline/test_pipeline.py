"""End-to-end tests for the parallel, cached analysis pipeline.

The load-bearing properties: (1) the pipeline reproduces exactly what the
serial Separ facade computes; (2) parallel (jobs > 1) output is
byte-identical to serial; (3) cached reruns are identical to uncached
runs, report their hits, and spend measurably less wall time in the
synthesis stage."""

import json

from repro.benchsuite.running_example import build_app1, build_app2
from repro.core import serialize
from repro.core.separ import Separ
from repro.pipeline import AnalysisPipeline, PipelineCache, RunReport
from repro.workloads import CorpusConfig, CorpusGenerator
from repro.workloads.bundles import partition_bundles


def _corpus_bundles(scale=0.005, bundle_size=7):
    apks = CorpusGenerator(CorpusConfig(scale=scale, seed=2016)).generate()
    return partition_bundles(apks, bundle_size=bundle_size, seed=2016)


def _findings_bytes(result):
    return json.dumps(result.findings_dict(), sort_keys=True).encode()


class TestEquivalenceWithSepar:
    def test_pipeline_matches_direct_analysis(self):
        apks = [build_app1(), build_app2()]
        direct = Separ(scenarios_per_signature=4).analyze_apks(apks)
        piped = AnalysisPipeline(jobs=1, scenarios_per_signature=4).run(
            [apks]
        ).reports[0]

        direct_scenarios = [
            serialize.scenario_to_dict(s) for s in direct.scenarios
        ]
        piped_scenarios = [
            serialize.scenario_to_dict(s) for s in piped.scenarios
        ]
        assert direct_scenarios == piped_scenarios
        assert [serialize.policy_to_dict(p) for p in direct.policies] == [
            serialize.policy_to_dict(p) for p in piped.policies
        ]
        assert direct.detection.to_dict() == piped.detection.to_dict()
        # Solver work is reproduced exactly, not just the findings.
        assert direct.stats.conflicts == piped.stats.conflicts
        assert direct.stats.decisions == piped.stats.decisions
        assert direct.stats.solver_calls == piped.stats.solver_calls


class TestSerialParallelIdentical:
    def test_byte_identical_findings(self):
        bundles = _corpus_bundles()
        serial = AnalysisPipeline(jobs=1, scenarios_per_signature=3).run(
            bundles
        )
        parallel = AnalysisPipeline(jobs=3, scenarios_per_signature=3).run(
            bundles
        )
        assert _findings_bytes(serial) == _findings_bytes(parallel)
        assert parallel.run_report.jobs == 3


class TestCaching:
    def test_warm_run_identical_and_faster(self, tmp_path):
        bundles = _corpus_bundles()
        uncached = AnalysisPipeline(jobs=1, scenarios_per_signature=3).run(
            bundles
        )
        cold = AnalysisPipeline(
            jobs=1,
            cache=PipelineCache(tmp_path),
            scenarios_per_signature=3,
        ).run(bundles)
        warm = AnalysisPipeline(
            jobs=1,
            cache=PipelineCache(tmp_path),
            scenarios_per_signature=3,
        ).run(bundles)

        # Cached results == uncached results, byte for byte.
        assert _findings_bytes(uncached) == _findings_bytes(cold)
        assert _findings_bytes(cold) == _findings_bytes(warm)

        assert cold.run_report.cache.total_hits == 0
        assert cold.run_report.cache.total_misses > 0
        assert warm.run_report.cache.total_misses == 0
        assert warm.run_report.cache.total_hits == (
            cold.run_report.cache.total_misses
        )
        # The warm synthesis stage skips SAT entirely.
        cold_synth = cold.run_report.stage("synthesis").seconds
        warm_synth = warm.run_report.stage("synthesis").seconds
        assert warm_synth < cold_synth

    def test_engine_params_partition_the_cache(self, tmp_path):
        apks = [build_app1(), build_app2()]
        AnalysisPipeline(
            jobs=1, cache=PipelineCache(tmp_path), scenarios_per_signature=2
        ).run([apks])
        other = AnalysisPipeline(
            jobs=1, cache=PipelineCache(tmp_path), scenarios_per_signature=3
        ).run([apks])
        # Different engine parameters must never reuse synthesis entries;
        # extraction is parameter-independent, so it may (and should) hit.
        assert other.run_report.cache.hits.get("synthesis", 0) == 0
        assert other.run_report.cache.misses.get("synthesis", 0) > 0
        assert other.run_report.cache.hits.get("extract", 0) == 2

    def test_synthesis_key_ignores_extraction_timing(self, tmp_path):
        """Re-extracting an app changes its wall-clock extraction_seconds
        but not its content; the synthesis cache must still hit."""
        from repro.statics import extract_bundle

        apks = [build_app1(), build_app2()]
        AnalysisPipeline(
            jobs=1, cache=PipelineCache(tmp_path)
        ).analyze_bundles([extract_bundle(apks)])
        warm = AnalysisPipeline(
            jobs=1, cache=PipelineCache(tmp_path)
        ).analyze_bundles([extract_bundle(apks)])
        assert warm.run_report.cache.misses.get("synthesis", 0) == 0
        assert warm.run_report.cache.hits.get("synthesis", 0) > 0

    def test_cache_hits_across_solver_backends(self, tmp_path):
        """Cache keys omit the solver backend on purpose: backends are
        verified byte-identical, so an entry written by one backend must
        be served -- unchanged -- to a run using the other."""
        apks = [build_app1(), build_app2()]
        cold = AnalysisPipeline(
            jobs=1,
            cache=PipelineCache(tmp_path),
            solver_backend="reference",
        ).run([apks])
        warm = AnalysisPipeline(
            jobs=1,
            cache=PipelineCache(tmp_path),
            solver_backend="fast",
        ).run([apks])
        assert warm.run_report.cache.total_misses == 0
        assert warm.run_report.cache.total_hits == (
            cold.run_report.cache.total_misses
        )
        assert _findings_bytes(cold) == _findings_bytes(warm)

    def test_changed_app_misses(self, tmp_path):
        AnalysisPipeline(jobs=1, cache=PipelineCache(tmp_path)).run(
            [[build_app1(), build_app2()]]
        )
        changed = AnalysisPipeline(
            jobs=1, cache=PipelineCache(tmp_path)
        ).run([[build_app1()]])
        assert changed.run_report.cache.misses.get("synthesis", 0) > 0


class TestRunReport:
    def test_report_shape_and_roundtrip(self):
        bundles = _corpus_bundles()
        result = AnalysisPipeline(jobs=1, scenarios_per_signature=2).run(
            bundles
        )
        report = result.run_report
        assert report.num_apps == sum(len(b) for b in bundles)
        assert report.num_bundles == len(bundles)
        assert {t.name for t in report.stages} == {
            "extract",
            "synthesis",
            "assemble",
        }
        assert report.total_seconds > 0
        assert len(report.per_bundle) == len(bundles)

        restored = RunReport.loads(report.dumps())
        assert restored.to_dict() == report.to_dict()

    def test_solver_counters_populated(self):
        result = AnalysisPipeline(jobs=1, scenarios_per_signature=4).run(
            [[build_app1(), build_app2()]]
        )
        solver = result.run_report.solver
        assert solver.solver_calls > 0
        assert solver.decisions > 0
        assert solver.num_vars > 0


class TestSerializationRoundtrip:
    def test_scenarios_and_policies_lossless(self):
        report = Separ(scenarios_per_signature=4).analyze_apks(
            [build_app1(), build_app2()]
        )
        assert report.scenarios
        for scenario in report.scenarios:
            data = json.loads(
                json.dumps(serialize.scenario_to_dict(scenario))
            )
            restored = serialize.scenario_from_dict(data)
            assert restored == scenario
        assert report.policies
        for policy in report.policies:
            data = json.loads(json.dumps(serialize.policy_to_dict(policy)))
            assert serialize.policy_from_dict(data) == policy
        detection = report.detection
        restored = type(detection).from_dict(
            json.loads(json.dumps(detection.to_dict()))
        )
        assert restored.findings == detection.findings
        assert restored.leak_pairs == detection.leak_pairs


class TestCli:
    def test_pipeline_subcommand_smoke(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        findings_path = tmp_path / "findings.json"
        assert main(
            [
                "pipeline",
                "--scale", "0.005",
                "--bundle-size", "7",
                "--scenarios", "2",
                "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--report", str(report_path),
                "--findings", str(findings_path),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "solver:" in out
        report = RunReport.loads(report_path.read_text())
        assert report.jobs == 2
        assert report.num_bundles > 0
        findings = json.loads(findings_path.read_text())
        assert len(findings["bundles"]) == report.num_bundles

    def test_analyze_jobs_flag(self, tmp_path, capsys):
        from repro.cli import main

        paths = []
        from repro.statics import extract_app

        for apk in (build_app1(), build_app2()):
            model = extract_app(apk)
            path = tmp_path / f"{model.package}.json"
            path.write_text(serialize.dumps_app(model))
            paths.append(str(path))
        assert main(["analyze", *paths, "--scenarios", "2", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "bundle:" in out
