"""Fault-tolerance tests for the pipeline executor.

Every failure path the executor promises to survive is exercised here via
the deterministic ``REPRO_FAULT`` injection hook: worker crashes (pool
breaks), task exceptions, hangs (per-task timeouts), retry-then-succeed
recovery, and budget-exhausted degraded synthesis.  The load-bearing
invariants: a fault never aborts the run, never double-counts metrics,
never poisons the cache, and never perturbs the findings of unaffected
tasks.

Task granularity matters here: the default shared-encoding mode issues
one synthesis task per *bundle*, while per-signature mode issues one per
(bundle, signature) pair.  Tests that pin signature-level fault
isolation construct their pipelines with ``shared_encoding=False``;
recovery tests whose assertions are granularity-independent run on the
shared default, and ``TestSharedModeFaults`` covers the bundle-level
failure unit explicitly."""

import json
import os

import pytest

from repro.benchsuite.metrics import summarize_run_report
from repro.benchsuite.running_example import build_app1, build_app2
from repro.core import serialize
from repro.core.synthesis import AnalysisAndSynthesisEngine, SynthesisStats
from repro.core.vulnerabilities import default_signatures
from repro.pipeline import (
    AnalysisPipeline,
    FaultPolicy,
    PipelineCache,
    RunReport,
    TaskFailure,
)
from repro.pipeline.faults import (
    FAULT_ENV,
    FAULT_PARENT_ENV,
    FAULT_STATE_ENV,
    FaultSpec,
    InjectedFault,
    maybe_inject,
    parse_fault_spec,
)
from repro.sat.solver import BudgetExhausted, Solver
from repro.statics import extract_bundle


@pytest.fixture(autouse=True)
def _clean_parent_marker():
    """``mark_parent_process`` writes ``REPRO_FAULT_PARENT`` directly into
    the environment during faulted runs; scrub it between tests."""
    yield
    os.environ.pop(FAULT_PARENT_ENV, None)


@pytest.fixture
def arm_fault(monkeypatch, tmp_path):
    """Arm a ``REPRO_FAULT`` spec (and a fresh ``once`` state dir)."""

    def arm(spec):
        monkeypatch.setenv(FAULT_ENV, spec)
        state = tmp_path / "fault-state"
        state.mkdir(exist_ok=True)
        monkeypatch.setenv(FAULT_STATE_ENV, str(state))

    return arm


def _apks():
    return [build_app1(), build_app2()]


def _scenarios_by_vuln(result):
    grouped = {}
    for report in result.reports:
        for scenario in report.scenarios:
            grouped.setdefault(scenario.vulnerability, []).append(
                serialize.scenario_to_dict(scenario)
            )
    return grouped


def _findings_bytes(result):
    return json.dumps(result.findings_dict(), sort_keys=True).encode()


class TestFaultSpecParsing:
    def test_full_spec_round_trip(self):
        spec = parse_fault_spec(
            "synthesis:crash:0.5:once:seed=7:match=intent_hijack"
        )
        assert spec == FaultSpec(
            stage="synthesis",
            kind="crash",
            rate=0.5,
            once=True,
            seed=7,
            match="intent_hijack",
        )

    def test_hang_secs_option(self):
        spec = parse_fault_spec("synthesis:hang:1.0:secs=0.25")
        assert spec == FaultSpec(
            stage="synthesis", kind="hang", rate=1.0, secs=0.25
        )

    def test_malformed_specs_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("synthesis:crash")  # no rate
        with pytest.raises(ValueError):
            parse_fault_spec("synthesis:explode:1.0")  # unknown kind
        with pytest.raises(ValueError):
            parse_fault_spec("synthesis:crash:1.0:sometimes")  # bad option

    def test_applies_filters_stage_and_match(self):
        spec = FaultSpec(stage="synthesis", kind="error", rate=1.0,
                         match="hijack")
        assert spec.applies("synthesis", "intent_hijack|a,b")
        assert not spec.applies("extract", "intent_hijack|a,b")
        assert not spec.applies("synthesis", "service_launch|a,b")

    def test_rate_selection_is_deterministic(self):
        spec = FaultSpec(stage="*", kind="error", rate=0.5)
        keys = [f"task-{i}" for i in range(64)]
        first = [spec.applies("synthesis", k) for k in keys]
        second = [spec.applies("synthesis", k) for k in keys]
        assert first == second
        assert any(first) and not all(first)
        assert not any(
            FaultSpec(stage="*", kind="error", rate=0.0).applies(
                "synthesis", k
            )
            for k in keys
        )

    def test_error_fault_raises(self, arm_fault):
        arm_fault("synthesis:error:1.0:match=hijack")
        with pytest.raises(InjectedFault):
            maybe_inject("synthesis", "intent_hijack|a,b")
        maybe_inject("synthesis", "service_launch|a,b")  # unmatched: no-op

    def test_crash_and_hang_never_fire_in_parent(self, arm_fault):
        """The orchestrator itself must never be crashed or stalled; the
        test passing at all is the assertion."""
        arm_fault("synthesis:crash:1.0,extract:hang:1.0")
        os.environ[FAULT_PARENT_ENV] = str(os.getpid())
        maybe_inject("synthesis", "any-task")
        maybe_inject("extract", "any-app")


class TestFaultPolicy:
    def test_exponential_backoff(self):
        policy = FaultPolicy(backoff_seconds=0.1, backoff_factor=3.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.3)
        assert policy.delay(3) == pytest.approx(0.9)


class TestTaskFailure:
    def test_round_trip(self):
        failure = TaskFailure(
            stage="synthesis",
            task="intent_hijack|a,b",
            kind="crash",
            error="worker exited",
            attempts=3,
            elapsed_seconds=1.25,
        )
        assert TaskFailure.from_dict(failure.to_dict()) == failure


class TestSerialFaultPaths:
    def test_retry_then_succeed(self, arm_fault):
        """A transient error costs a retry but not the result."""
        arm_fault("synthesis:error:1.0:once:match=privilege_escalation")
        clean = AnalysisPipeline(jobs=1, scenarios_per_signature=3).run(
            [_apks()]
        )
        os.environ.pop(FAULT_PARENT_ENV, None)
        faulted = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            faults=FaultPolicy(max_retries=2, backoff_seconds=0.0),
        ).run([_apks()])
        assert faulted.run_report.failures == []
        assert faulted.run_report.clean
        assert _findings_bytes(faulted) == _findings_bytes(clean)

    def test_persistent_error_becomes_structured_failure(self, arm_fault):
        # Signature-level fault isolation exists only in per-signature
        # mode; a shared bundle task would take every signature with it.
        arm_fault("synthesis:error:1.0:match=intent_hijack")
        result = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            faults=FaultPolicy(max_retries=1, backoff_seconds=0.0),
            shared_encoding=False,
        ).run([_apks()])
        report = result.run_report
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["stage"] == "synthesis"
        assert failure["kind"] == "error"
        assert failure["attempts"] == 2  # first try + one retry
        assert "InjectedFault" in failure["error"]
        assert "intent_hijack" in failure["task"]
        # Every other signature still produced its scenarios.
        grouped = _scenarios_by_vuln(result)
        assert "intent_hijack" not in grouped
        assert "service_launch" in grouped and "information_leak" in grouped

    def test_extract_failure_drops_app_not_run(self, arm_fault):
        arm_fault("extract:error:1.0:match=com.example.messenger")
        result = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            faults=FaultPolicy(max_retries=0, backoff_seconds=0.0),
        ).run([_apks()])
        report = result.run_report
        assert [f["stage"] for f in report.failures] == ["extract"]
        assert report.failures[0]["task"] == "com.example.messenger"
        # The surviving app was still analyzed (as a singleton bundle).
        assert [a.package for a in result.reports[0].bundle.apps] == [
            "com.example.navigation"
        ]


class TestWorkerCrashIsolation:
    def test_persistent_crash_is_attributed_and_isolated(self, arm_fault):
        """A worker that keeps dying takes down only its own task: the
        crash is attributed to it via isolation re-runs, and every other
        (bundle, signature) pair's findings are byte-identical to a clean
        serial run."""
        clean = AnalysisPipeline(
            jobs=1, scenarios_per_signature=3, shared_encoding=False
        ).run([_apks()])
        arm_fault("synthesis:crash:1.0:match=intent_hijack")
        faulted = AnalysisPipeline(
            jobs=2,
            scenarios_per_signature=3,
            faults=FaultPolicy(max_retries=1, backoff_seconds=0.0),
            shared_encoding=False,
        ).run([_apks()])
        report = faulted.run_report
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["kind"] == "crash"
        assert failure["attempts"] == 2
        assert "intent_hijack" in failure["task"]
        assert not report.clean

        clean_grouped = _scenarios_by_vuln(clean)
        faulted_grouped = _scenarios_by_vuln(faulted)
        assert "intent_hijack" not in faulted_grouped
        clean_grouped.pop("intent_hijack", None)
        assert faulted_grouped == clean_grouped

    def test_crash_once_recovers_exactly(self, arm_fault):
        """One crash breaks the pool; the respawned pool re-runs the task
        and the final findings are byte-identical to a clean run.

        Per-signature mode: crashes only fire in subprocess workers, and
        one bundle is a single (in-process) task under the shared
        encoding."""
        clean = AnalysisPipeline(
            jobs=2, scenarios_per_signature=3, shared_encoding=False
        ).run([_apks()])
        arm_fault("synthesis:crash:1.0:once:match=service_launch")
        faulted = AnalysisPipeline(
            jobs=2,
            scenarios_per_signature=3,
            faults=FaultPolicy(max_retries=2, backoff_seconds=0.0),
            shared_encoding=False,
        ).run([_apks()])
        assert faulted.run_report.failures == []
        assert _findings_bytes(faulted) == _findings_bytes(clean)


class TestPerTaskTimeout:
    def test_hanging_task_times_out(self, arm_fault):
        arm_fault("synthesis:hang:1.0:match=information_leak")
        result = AnalysisPipeline(
            jobs=2,
            scenarios_per_signature=3,
            faults=FaultPolicy(
                task_timeout=1.0, max_retries=0, backoff_seconds=0.0
            ),
            shared_encoding=False,
        ).run([_apks()])
        report = result.run_report
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["kind"] == "timeout"
        assert "information_leak" in failure["task"]
        assert failure["attempts"] == 1
        grouped = _scenarios_by_vuln(result)
        assert "information_leak" not in grouped
        assert "intent_hijack" in grouped

    def test_timeout_kill_spares_healthy_inflight_peer(self, arm_fault):
        """Regression: a timeout kills the whole pool generation, and the
        healthy tasks still in flight used to be dropped on the floor
        (returned as ``interrupted`` with ``broke=False`` and never
        requeued), surfacing as bogus 'never completed' failures.  Only
        the timeout victim may be charged; delayed-but-healthy peers must
        rejoin the batch and complete.

        Choreography (jobs=2, timeout=2.5s): ``intent_hijack`` hangs
        forever and ``service_launch`` sleeps 1s, so both workers are
        busy from t=0; ``service_launch`` finishes and frees its worker
        for ``information_leak`` (sleeps 1.5s), which is therefore still
        mid-flight -- and nowhere near its own timeout -- when the hang
        victim's deadline tears the generation down at t=2.5."""
        arm_fault(
            "synthesis:hang:1.0:match=intent_hijack,"
            "synthesis:hang:1.0:secs=1.0:match=service_launch,"
            "synthesis:hang:1.0:secs=1.5:match=information_leak"
        )
        result = AnalysisPipeline(
            jobs=2,
            signature_names=[
                "intent_hijack", "service_launch", "information_leak"
            ],
            scenarios_per_signature=3,
            faults=FaultPolicy(
                task_timeout=2.5, max_retries=0, backoff_seconds=0.0
            ),
            shared_encoding=False,
        ).run([_apks()])
        report = result.run_report
        assert [f["kind"] for f in report.failures] == ["timeout"]
        assert "intent_hijack" in report.failures[0]["task"]
        grouped = _scenarios_by_vuln(result)
        assert "service_launch" in grouped
        assert "information_leak" in grouped


class TestBudgetDegradation:
    def test_engine_conflict_budget_degrades(self):
        bundle = extract_bundle(_apks())
        bounded = AnalysisAndSynthesisEngine(
            scenarios_per_signature=3, conflict_budget=0
        ).run(bundle)
        assert bounded.stats.exhausted
        unbounded = AnalysisAndSynthesisEngine(
            scenarios_per_signature=3
        ).run(bundle)
        assert not unbounded.stats.exhausted
        assert len(bounded.scenarios) < len(unbounded.scenarios)

    def test_engine_time_budget_degrades(self):
        bundle = extract_bundle(_apks())
        result = AnalysisAndSynthesisEngine(
            scenarios_per_signature=3, time_budget_seconds=0.0
        ).run(bundle)
        assert result.stats.exhausted

    def test_degraded_round_trip_and_never_cached(self, tmp_path):
        # Per-signature mode: each degraded task is its own cache entry,
        # so rejections and misses count 1:1 with degraded entries.
        cache_dir = tmp_path / "cache"
        pipe = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            cache=PipelineCache(cache_dir),
            conflict_budget=0,
            shared_encoding=False,
        )
        report = pipe.run([_apks()]).run_report
        assert report.degraded
        for entry in report.degraded:
            assert entry["stage"] == "synthesis"
            assert entry["reason"] == "budget_exhausted"
        assert not report.clean
        # The cache refused every degraded payload and counted it.
        assert report.cache.rejections.get("synthesis") == len(
            report.degraded
        )
        # A rerun must redo the degraded work: only complete payloads hit.
        warm = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            cache=PipelineCache(cache_dir),
            conflict_budget=0,
            shared_encoding=False,
        ).run([_apks()]).run_report
        assert warm.cache.misses.get("synthesis") == len(report.degraded)
        # Failures/degraded/rejections survive serialization.
        restored = RunReport.loads(report.dumps())
        assert restored.degraded == report.degraded
        assert restored.failures == report.failures
        assert restored.cache.rejections == report.cache.rejections

    def test_summary_counts_failures_and_degraded(self, arm_fault):
        arm_fault("synthesis:error:1.0:match=intent_hijack")
        report = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=2,
            conflict_budget=0,
            faults=FaultPolicy(max_retries=0, backoff_seconds=0.0),
            shared_encoding=False,
        ).run([_apks()]).run_report
        summary = summarize_run_report(report)
        assert summary["num_failures"] == 1.0
        assert summary["num_degraded"] == float(len(report.degraded))
        assert summary["num_degraded"] > 0


class TestSharedModeFaults:
    """Shared-encoding mode's failure unit is the whole bundle task."""

    def test_shared_bundle_task_is_the_failure_unit(self, arm_fault):
        """A fault matching any signature name hits the bundle task (its
        key lists every signature), and the failure takes the bundle's
        entire synthesis with it -- the documented granularity tradeoff
        of the shared encoding."""
        arm_fault("synthesis:error:1.0:match=intent_hijack")
        result = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            faults=FaultPolicy(max_retries=1, backoff_seconds=0.0),
        ).run([_apks()])
        report = result.run_report
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure["stage"] == "synthesis"
        assert failure["kind"] == "error"
        assert failure["task"].startswith("shared[")
        assert "intent_hijack" in failure["task"]
        assert _scenarios_by_vuln(result) == {}

    def test_shared_degraded_records_per_signature(self, tmp_path):
        """One incomplete bundle payload still reports degradation at
        signature granularity (same boundary as per-signature mode), and
        the cache refuses it as the single entry it is."""
        cache_dir = tmp_path / "cache"
        report = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            cache=PipelineCache(cache_dir),
            conflict_budget=0,
        ).run([_apks()]).run_report
        assert report.degraded
        for entry in report.degraded:
            assert entry["stage"] == "synthesis"
            assert entry["reason"] == "budget_exhausted"
            # Signature-granular task labels, not the bundle task key.
            name = entry["task"].split("|", 1)[0]
            assert name in {
                sig.name for sig in default_signatures()
            }
        # One bundle task, one rejected cache entry, one warm-run miss.
        assert report.cache.rejections.get("synthesis") == 1
        warm = AnalysisPipeline(
            jobs=1,
            scenarios_per_signature=3,
            cache=PipelineCache(cache_dir),
            conflict_budget=0,
        ).run([_apks()]).run_report
        assert warm.cache.misses.get("synthesis") == 1


class TestMetricsNoDoubleCount:
    def test_pool_break_counts_each_task_once(self, arm_fault):
        """The double-count regression: a broken pool must not re-merge
        metrics for completed tasks nor double-run unaffected ones.  All
        solver/engine counters match a clean serial run exactly (timing
        histograms keep their counts; their sums are wall-clock).

        Per-signature mode: a pool break needs several tasks in flight,
        and one bundle is a single task under the shared encoding."""
        from repro.obs import metrics as obs_metrics

        def comparable(snapshot):
            # Counters compare by value; timing histograms by observation
            # count (their sums are wall-clock and legitimately vary).
            out = {}
            for name, value in snapshot.items():
                if not name.startswith(("sat.", "ase.")):
                    continue
                if value.get("type") == "histogram":
                    out[name] = value.get("count")
                else:
                    out[name] = value.get("value")
            return out

        os.environ[obs_metrics.METRICS_ENV] = "1"
        try:
            serial_registry = obs_metrics.MetricsRegistry()
            obs_metrics.set_metrics(serial_registry)
            AnalysisPipeline(
                jobs=1, scenarios_per_signature=3, shared_encoding=False
            ).run([_apks()])
            serial = comparable(serial_registry.snapshot())

            os.environ.pop(FAULT_PARENT_ENV, None)
            arm_fault("synthesis:crash:1.0:once:match=service_launch")
            broken_registry = obs_metrics.MetricsRegistry()
            obs_metrics.set_metrics(broken_registry)
            result = AnalysisPipeline(
                jobs=2,
                scenarios_per_signature=3,
                faults=FaultPolicy(max_retries=2, backoff_seconds=0.0),
                shared_encoding=False,
            ).run([_apks()])
            snapshot = broken_registry.snapshot()
            broken = comparable(snapshot)

            assert result.run_report.failures == []
            assert (
                snapshot.get("pipeline.pool_breaks", {}).get("value", 0)
                >= 1
            )
            assert serial == broken
        finally:
            obs_metrics.set_metrics(obs_metrics.NULL_METRICS)
            os.environ.pop(obs_metrics.METRICS_ENV, None)


class TestSynthesisStatsMerge:
    def test_per_signature_accumulates_instead_of_clobbering(self):
        first = SynthesisStats(
            solver_calls=2,
            per_signature={
                "intent_hijack": {
                    "construction_seconds": 0.5,
                    "solving_seconds": 1.0,
                    "scenarios": 2.0,
                }
            },
        )
        second = SynthesisStats(
            solver_calls=3,
            exhausted=True,
            per_signature={
                "intent_hijack": {
                    "construction_seconds": 0.25,
                    "solving_seconds": 0.5,
                    "scenarios": 1.0,
                },
                "service_launch": {"scenarios": 4.0},
            },
        )
        first.merge(second)
        assert first.solver_calls == 5
        assert first.exhausted
        assert first.per_signature["intent_hijack"] == {
            "construction_seconds": 0.75,
            "solving_seconds": 1.5,
            "scenarios": 3.0,
        }
        assert first.per_signature["service_launch"] == {"scenarios": 4.0}
        # merge must not alias the other block's dicts.
        second.per_signature["service_launch"]["scenarios"] = 99.0
        assert first.per_signature["service_launch"] == {"scenarios": 4.0}

    def test_round_trip_preserves_exhausted(self):
        stats = SynthesisStats(
            exhausted=True, per_signature={"x": {"scenarios": 1.0}}
        )
        restored = SynthesisStats.from_dict(stats.to_dict())
        assert restored.exhausted
        assert restored.per_signature == stats.per_signature


class TestSolverBudgetMetrics:
    def test_budget_miss_still_publishes_counters(self):
        """The interrupted call's work must reach the metrics registry:
        a budget miss publishes sat.* counters on the exception path."""
        from repro.obs import metrics as obs_metrics

        os.environ[obs_metrics.METRICS_ENV] = "1"
        try:
            registry = obs_metrics.MetricsRegistry()
            obs_metrics.set_metrics(registry)
            solver = Solver()
            solver.ensure_var(2)
            assert solver.add_clauses(
                [[1, 2], [1, -2], [-1, 2], [-1, -2]]
            )
            with pytest.raises(BudgetExhausted) as excinfo:
                solver.solve(conflict_budget=0)
            assert excinfo.value.conflicts >= 1
            snapshot = registry.snapshot()
            assert snapshot["sat.solver_calls"]["value"] == 1
            assert snapshot["sat.results.budget_exhausted"]["value"] == 1
            assert snapshot["sat.conflicts"]["value"] >= 1
        finally:
            obs_metrics.set_metrics(obs_metrics.NULL_METRICS)
            os.environ.pop(obs_metrics.METRICS_ENV, None)
