"""Tests for the comparison-tool capability profiles."""

import pytest

from repro.baselines import AmanDroid, Covert, DidFail, SeparTool
from repro.baselines.common import (
    FULL_PROFILE,
    LeakCompositionProfile,
    compose_leaks,
)
from repro.benchsuite.droidbench import (
    bind_service1,
    droidbench_cases,
    iac_case,
    provider_case,
    start_activity_for_result_n,
    start_activity_n,
    start_activity_unreachable,
    start_service_n,
)
from repro.benchsuite.iccbench import dyn_registered_receiver, implicit_action
from repro.benchsuite.running_example import build_app1, build_app2
from repro.android.components import ComponentKind
from repro.statics import extract_bundle


class TestDidFailProfile:
    def test_misses_explicit(self):
        case = start_activity_n(1)
        assert not DidFail().find_leaks(case.apks)
        assert SeparTool().find_leaks(case.apks) == case.expected

    def test_flags_unreachable_code(self):
        case = start_activity_unreachable(4)
        findings = DidFail().find_leaks(case.apks)
        assert findings, "DidFail must report the dead-code leak"
        assert not SeparTool().find_leaks(case.apks)

    def test_scheme_blind_decoy(self):
        case = start_service_n(1)
        didfail = DidFail().find_leaks(case.apks)
        separ = SeparTool().find_leaks(case.apks)
        assert separ == case.expected
        assert didfail > case.expected  # true pair plus the decoy

    def test_no_provider_support(self):
        case = provider_case("insert")
        assert not DidFail().find_leaks(case.apks)

    def test_finds_implicit_iac(self):
        case = iac_case("Context.sendBroadcast", "x", ComponentKind.RECEIVER)
        findings = DidFail().find_leaks(case.apks)
        assert case.expected <= findings


class TestAmanDroidProfile:
    def test_handles_explicit_intra_app(self):
        case = start_activity_n(1)
        assert AmanDroid().find_leaks(case.apks) == case.expected

    def test_misses_bound_services(self):
        case = bind_service1()
        assert not AmanDroid().find_leaks(case.apks)

    def test_misses_result_channels(self):
        case = start_activity_for_result_n(1)
        assert not AmanDroid().find_leaks(case.apks)

    def test_misses_inter_app(self):
        case = iac_case("Context.startService", "y", ComponentKind.SERVICE)
        assert not AmanDroid().find_leaks(case.apks)

    def test_dynamic_receiver_resolvable_only(self):
        case1 = dyn_registered_receiver(1)
        case2 = dyn_registered_receiver(2)
        aman = AmanDroid()
        assert aman.find_leaks(case1.apks) == case1.expected
        assert not aman.find_leaks(case2.apks)

    def test_no_provider_support(self):
        case = provider_case("query")
        assert not AmanDroid().find_leaks(case.apks)


class TestCovertProfile:
    def test_no_leak_detection(self):
        case = implicit_action()
        assert Covert().find_leaks(case.apks) == set()

    def test_detects_escalation(self):
        escalations = Covert().find_escalations([build_app1(), build_app2()])
        assert "com.example.messenger/MessageSender" in escalations


class TestSeparTool:
    def test_full_suite_no_false_positives(self):
        tool = SeparTool()
        for case in droidbench_cases():
            findings = tool.find_leaks(case.apks)
            assert findings <= case.expected, case.name

    def test_dynamic_receiver_ablation(self):
        """With the extension flag, SEPAR recovers DynRegisteredReceiver1."""
        case = dyn_registered_receiver(1)
        assert not SeparTool().find_leaks(case.apks)
        assert (
            SeparTool(handle_dynamic_receivers=True).find_leaks(case.apks)
            == case.expected
        )


class TestCompositionProfiles:
    def test_full_profile_is_default_semantics(self):
        bundle = extract_bundle([build_app1(), build_app2()])
        pairs = compose_leaks(bundle, FULL_PROFILE)
        # LocationFinder's LOCATION intent reaches RouteFinder which logs.
        assert (
            "com.example.navigation/LocationFinder",
            "com.example.navigation/RouteFinder",
        ) in pairs

    def test_intra_app_only_filters_cross_app(self):
        case = iac_case("Context.sendBroadcast", "z", ComponentKind.RECEIVER)
        bundle = extract_bundle(case.apks)
        full = compose_leaks(bundle, FULL_PROFILE)
        restricted = compose_leaks(
            bundle, LeakCompositionProfile(intra_app_only=True)
        )
        assert case.expected <= full
        assert not restricted

    def test_profiles_monotone(self):
        """Restricting capabilities never adds findings (except the
        scheme-blindness over-approximation)."""
        for case in droidbench_cases():
            bundle = extract_bundle(case.apks)
            full = compose_leaks(bundle, FULL_PROFILE)
            narrowed = compose_leaks(
                bundle,
                LeakCompositionProfile(
                    include_result_channels=False,
                    include_providers=False,
                    intra_app_only=True,
                ),
            )
            assert narrowed <= full, case.name
