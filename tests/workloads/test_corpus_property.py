"""Robustness properties of the corpus generator under arbitrary seeds."""

from hypothesis import given, settings, strategies as st

from repro.core.detector import SeparDetector
from repro.statics import extract_bundle
from repro.workloads import CorpusConfig, CorpusGenerator, partition_bundles


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_any_seed_generates_analyzable_apps(seed):
    """Every generated app survives extraction and detection, and the
    pipeline is deterministic for a fixed seed."""
    config = CorpusConfig(scale=0.01, seed=seed)
    apks = CorpusGenerator(config).generate()
    assert apks
    bundle = extract_bundle(apks)
    report = SeparDetector().detect(bundle)
    # Determinism: the same seed reproduces the same findings.
    apks2 = CorpusGenerator(CorpusConfig(scale=0.01, seed=seed)).generate()
    report2 = SeparDetector().detect(extract_bundle(apks2))
    assert report.findings == report2.findings
    assert report.leak_pairs == report2.leak_pairs


@given(
    n=st.integers(min_value=0, max_value=200),
    size=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_partition_is_a_partition(n, size, seed):
    items = list(range(n))
    bundles = partition_bundles(items, bundle_size=size, seed=seed)
    flat = [x for b in bundles for x in b]
    assert sorted(flat) == items
    assert all(len(b) <= size for b in bundles)
    assert all(b for b in bundles)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_injected_vulnerabilities_always_detected(seed):
    """Whatever the generator injects, the pipeline finds: per-app
    detection covers each ledger entry (whole-corpus extraction)."""
    generator = CorpusGenerator(CorpusConfig(scale=0.02, seed=seed))
    apks = generator.generate()
    bundle = extract_bundle(apks)
    report = SeparDetector().detect(bundle)
    launch_apps = report.apps("activity_launch") | report.apps("service_launch")
    assert generator.ledger.hijack_apps <= report.apps("intent_hijack")
    assert generator.ledger.launch_apps <= launch_apps
    assert generator.ledger.leak_apps <= report.apps("information_leak")
    assert generator.ledger.escalation_apps <= report.apps(
        "privilege_escalation"
    )
