"""Tests for the synthetic market corpus generator and bundling."""

import pytest

from repro.statics import extract_app, extract_bundle
from repro.core.detector import SeparDetector
from repro.workloads import (
    CorpusConfig,
    CorpusGenerator,
    REPOSITORIES,
    partition_bundles,
)


@pytest.fixture(scope="module")
def small_corpus():
    # seed 11, scale 0.05 injects at least one of every vulnerability kind.
    generator = CorpusGenerator(CorpusConfig(scale=0.05, seed=11))
    return generator, generator.generate()


class TestGeneration:
    def test_deterministic_under_seed(self):
        a = CorpusGenerator(CorpusConfig(scale=0.02, seed=42)).generate()
        b = CorpusGenerator(CorpusConfig(scale=0.02, seed=42)).generate()
        assert [x.package for x in a] == [y.package for y in b]
        assert [x.size_kb for x in a] == [y.size_kb for y in b]

    def test_different_seeds_differ(self):
        a = CorpusGenerator(CorpusConfig(scale=0.02, seed=1)).generate()
        b = CorpusGenerator(CorpusConfig(scale=0.02, seed=2)).generate()
        assert [x.size_kb for x in a] != [y.size_kb for y in b]

    def test_repository_populations(self, small_corpus):
        _, apks = small_corpus
        by_repo = {}
        for apk in apks:
            by_repo[apk.repository] = by_repo.get(apk.repository, 0) + 1
        for name, profile in REPOSITORIES.items():
            assert by_repo[name] == max(1, round(profile.count * 0.05))

    def test_full_scale_population(self):
        config = CorpusConfig(scale=1.0)
        total = sum(
            config.scaled_count(p) for p in config.repositories.values()
        )
        assert total == 4000  # the paper's corpus size

    def test_packages_unique(self, small_corpus):
        _, apks = small_corpus
        packages = [a.package for a in apks]
        assert len(packages) == len(set(packages))

    def test_ledger_tracks_injections(self, small_corpus):
        generator, apks = small_corpus
        counts = generator.ledger.counts()
        assert all(v >= 0 for v in counts.values())
        packages = {a.package for a in apks}
        for bucket in (
            generator.ledger.hijack_apps,
            generator.ledger.leak_apps,
        ):
            assert bucket <= packages


class TestGeneratedAppsAnalyzable:
    def test_every_app_extracts(self, small_corpus):
        _, apks = small_corpus
        for apk in apks[:40]:
            model = extract_app(apk)
            assert model.components

    def test_injected_hijack_detected(self, small_corpus):
        generator, apks = small_corpus
        target = next(iter(generator.ledger.hijack_apps))
        apk = next(a for a in apks if a.package == target)
        bundle = extract_bundle([apk])
        report = SeparDetector().detect(bundle)
        assert target in report.apps("intent_hijack")

    def test_injected_leak_detected(self, small_corpus):
        generator, apks = small_corpus
        target = next(iter(generator.ledger.leak_apps))
        apk = next(a for a in apks if a.package == target)
        report = SeparDetector().detect(extract_bundle([apk]))
        assert target in report.apps("information_leak")

    def test_injected_escalation_detected(self, small_corpus):
        generator, apks = small_corpus
        target = next(iter(generator.ledger.escalation_apps))
        apk = next(a for a in apks if a.package == target)
        report = SeparDetector().detect(extract_bundle([apk]))
        assert target in report.apps("privilege_escalation")

    def test_benign_app_clean(self, small_corpus):
        generator, apks = small_corpus
        injected = (
            generator.ledger.hijack_apps
            | generator.ledger.launch_apps
            | generator.ledger.leak_apps
            | generator.ledger.escalation_apps
        )
        benign = next(a for a in apks if a.package not in injected)
        report = SeparDetector().detect(extract_bundle([benign]))
        for vuln in report.findings.values():
            assert not vuln


class TestBundles:
    def test_partition_sizes(self):
        bundles = partition_bundles(list(range(230)), bundle_size=50)
        assert [len(b) for b in bundles] == [50, 50, 50, 50, 30]

    def test_partition_disjoint_and_complete(self):
        items = list(range(173))
        bundles = partition_bundles(items, bundle_size=50, seed=3)
        flat = [x for b in bundles for x in b]
        assert sorted(flat) == items

    def test_partition_deterministic(self):
        a = partition_bundles(list(range(100)), seed=9)
        b = partition_bundles(list(range(100)), seed=9)
        assert a == b

    def test_partition_rejects_bad_size(self):
        with pytest.raises(ValueError):
            partition_bundles([1, 2, 3], bundle_size=0)

    def test_paper_partition_shape(self):
        """4,000 apps -> 80 bundles of 50."""
        bundles = partition_bundles(list(range(4000)), bundle_size=50)
        assert len(bundles) == 80
        assert all(len(b) == 50 for b in bundles)
