"""Differential fuzzing of the CDCL solver backends against an oracle.

Seeded random-CNF instances keep CI deterministic: the generator is
parameterized by an explicit seed (override with ``REPRO_FUZZ_SEED`` to
explore), the instances stay small enough (<= 12 variables) that a full
truth-table enumeration is the oracle, and every discrepancy message
carries the seed/instance needed to replay it.

Every instance runs against *both* registered backends (the reference
object-graph solver and the flat-arena fast solver), from three angles
matching how the synthesis engine drives them:

- plain satisfiability + model soundness,
- assumption queries (the shared-encoding mode's bread and butter),
- solver *reusability*: an UNSAT-under-assumptions query must not spoil
  the solver for later queries, incremental clause addition included.

The fast backend additionally gets trail-saving sequences (repeated
assumption queries sharing prefixes, interleaved with clause additions)
checked move-by-move against the oracle, and both backends are checked
for the exact ``BudgetExhausted`` contract.
"""

import itertools
import os
import random

import pytest

from repro.sat import SOLVER_BACKENDS, BudgetExhausted, Solver, make_solver


FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20160807"))
ROUNDS = int(os.environ.get("REPRO_FUZZ_ROUNDS", "60"))

BACKENDS = sorted(SOLVER_BACKENDS)


def random_cnf(rng, num_vars, num_clauses, max_width=3):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        lits = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    return clauses


def brute_force(clauses, num_vars, fixed=None):
    """All-models oracle: is there a model extending ``fixed``?"""
    fixed = dict(fixed or {})
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if any(model[v] != val for v, val in fixed.items()):
            continue
        if all(
            any(model[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def check_model(clauses, model):
    return all(
        any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses
    )


def _instances():
    rng = random.Random(FUZZ_SEED)
    for index in range(ROUNDS):
        num_vars = rng.randint(3, 12)
        num_clauses = rng.randint(1, 4 * num_vars)
        yield index, rng.randint(0, 2 ** 31), num_vars, num_clauses


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "index,seed,num_vars,num_clauses",
    list(_instances()),
    ids=lambda value: str(value),
)
class TestRandomCnf:
    def test_agrees_with_brute_force(
        self, index, seed, num_vars, num_clauses, backend
    ):
        rng = random.Random(seed)
        clauses = random_cnf(rng, num_vars, num_clauses)
        solver = make_solver(backend)
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        expected = brute_force(clauses, num_vars)
        if not ok:
            # add_clause already proved top-level UNSAT; the oracle must
            # agree, and solve() must report it too.
            assert not expected, (FUZZ_SEED, index)
            assert not solver.solve().satisfiable
            return
        result = solver.solve()
        assert result.satisfiable == expected, (FUZZ_SEED, index)
        if result.satisfiable:
            assert check_model(clauses, result.model), (FUZZ_SEED, index)

    def test_assumption_queries_agree(
        self, index, seed, num_vars, num_clauses, backend
    ):
        rng = random.Random(seed)
        clauses = random_cnf(rng, num_vars, num_clauses)
        solver = make_solver(backend)
        if not all(solver.add_clause(cl) for cl in clauses):
            pytest.skip("top-level UNSAT: no assumption query to make")
        for _ in range(4):
            width = rng.randint(1, min(3, num_vars))
            chosen = rng.sample(range(1, num_vars + 1), width)
            assumptions = [
                v if rng.random() < 0.5 else -v for v in chosen
            ]
            fixed = {abs(l): l > 0 for l in assumptions}
            expected = brute_force(clauses, num_vars, fixed)
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable == expected, (
                FUZZ_SEED, index, assumptions,
            )
            if result.satisfiable:
                assert check_model(clauses, result.model)
                for lit in assumptions:
                    assert result.model[abs(lit)] == (lit > 0)

    def test_reusable_after_failed_assumption_query(
        self, index, seed, num_vars, num_clauses, backend
    ):
        """An UNSAT-under-assumptions answer must leave the solver intact:
        the unconstrained query still answers correctly afterwards, and so
        does a query after adding one more clause (the incremental pattern
        the shared encoding relies on)."""
        rng = random.Random(seed)
        clauses = random_cnf(rng, num_vars, num_clauses)
        solver = make_solver(backend)
        if not all(solver.add_clause(cl) for cl in clauses):
            pytest.skip("top-level UNSAT")
        baseline = brute_force(clauses, num_vars)
        # Hunt for an assumption set the formula refutes.
        refuted = None
        for _ in range(16):
            chosen = rng.sample(
                range(1, num_vars + 1), rng.randint(1, num_vars)
            )
            assumptions = [
                v if rng.random() < 0.5 else -v for v in chosen
            ]
            fixed = {abs(l): l > 0 for l in assumptions}
            if not brute_force(clauses, num_vars, fixed):
                refuted = assumptions
                break
        if refuted is None:
            pytest.skip("no refutable assumption set found")
        assert not solver.solve(assumptions=refuted).satisfiable
        # The failed query must not have poisoned the solver state.
        assert solver.solve().satisfiable == baseline, (FUZZ_SEED, index)
        extra = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 1)
        ]
        solver.add_clause(extra)
        expected = brute_force(clauses + [extra], num_vars)
        assert solver.solve().satisfiable == expected, (FUZZ_SEED, index)


def _trail_saving_sequences():
    rng = random.Random(FUZZ_SEED ^ 0x5A17)
    for index in range(min(ROUNDS, 40)):
        yield index, rng.randint(0, 2 ** 31)


@pytest.mark.parametrize(
    "index,seed", list(_trail_saving_sequences()), ids=str
)
class TestTrailSavingSequences:
    """The fast backend's saved assumption prefix vs the oracle.

    Each sequence drives one warm solver through assumption queries that
    deliberately share prefixes (the gated-enumeration pattern), with
    clause additions interleaved while a trail is saved -- every answer
    is checked against brute force, and, where satisfiable, the model
    against the clause set."""

    def test_prefix_reuse_matches_oracle(self, index, seed):
        rng = random.Random(seed)
        num_vars = rng.randint(4, 10)
        clauses = random_cnf(rng, num_vars, rng.randint(2, 3 * num_vars))
        solver = make_solver("fast")
        if not all(solver.add_clause(cl) for cl in clauses):
            pytest.skip("top-level UNSAT")
        prefix = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 2)
        ]
        for step in range(8):
            if rng.random() < 0.3:
                # Mutate the prefix: the next query must unwind exactly
                # the divergent suffix, never stale state.
                prefix[-1] = -prefix[-1]
            tail = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, num_vars + 1), 1)
            ]
            assumptions = prefix + tail
            fixed = {abs(l): l > 0 for l in assumptions}
            # Assumptions may repeat a variable with both signs; such a
            # query is vacuously UNSAT only if signs conflict.
            conflicting = any(
                fixed[abs(l)] != (l > 0) for l in assumptions
            )
            expected = not conflicting and brute_force(
                clauses, num_vars, fixed
            )
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable == expected, (
                FUZZ_SEED, index, step, assumptions,
            )
            if result.satisfiable:
                assert check_model(clauses, result.model)
            if rng.random() < 0.4:
                # Add a clause while the trail is saved: attach-live
                # paths (watch, unit, conflicting-under-prefix).
                extra = [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(
                        range(1, num_vars + 1), rng.randint(1, 3)
                    )
                ]
                if not solver.add_clause(extra):
                    return  # proved UNSAT outright; nothing left to ask
                clauses.append(extra)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBudgetContract:
    """``BudgetExhausted`` must fire at exactly ``>= budget`` conflicts,
    and the interrupted solver must stay reusable -- identically on both
    backends (the pipeline's degraded-result accounting depends on the
    exact counter values)."""

    @staticmethod
    def _hard_instance(backend):
        # Pigeonhole-flavored instance: enough conflicts to trip small
        # budgets deterministically.
        solver = make_solver(backend)
        holes = 4
        var = lambda p, h: p * holes + h + 1  # noqa: E731
        for p in range(holes + 1):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        return solver

    def test_raises_at_exact_budget(self, backend):
        solver = self._hard_instance(backend)
        with pytest.raises(BudgetExhausted) as excinfo:
            solver.solve(conflict_budget=5)
        assert excinfo.value.conflicts == 5

    def test_reusable_after_exhaustion(self, backend):
        solver = self._hard_instance(backend)
        with pytest.raises(BudgetExhausted):
            solver.solve(conflict_budget=3)
        # Unbudgeted retry completes and agrees with the known answer.
        assert not solver.solve().satisfiable

    def test_generous_budget_is_not_tripped(self, backend):
        solver = make_solver(backend)
        solver.add_clause([1])
        result = solver.solve(conflict_budget=10)
        assert result.satisfiable
        assert result.model[1] is True


@pytest.mark.parametrize("backend", BACKENDS)
class TestModelAssignedOnly:
    """Regression for the assigned-only :class:`Model` accessor.

    ``_finish`` must not materialize an O(num_vars) dict: variables the
    solver never assigned read as False (the historical contract) but do
    not appear in iteration, so model size tracks the trail, not the
    variable count."""

    def test_unassigned_vars_read_false_but_are_absent(self, backend):
        solver = make_solver(backend)
        solver.add_clause([1, 2])
        solver.ensure_var(5000)
        result = solver.solve(assumptions=[1])
        assert result.satisfiable
        model = result.model
        assert model[1] is True
        # Variable 5000 exists in the solver; whether the search assigned
        # it or not, reads give a boolean and default to False.
        assert model.get(4999, False) is False
        assert isinstance(model[4999], bool)

    def test_model_iteration_is_assigned_only(self, backend):
        solver = make_solver(backend)
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert set(result.model) == {1}
        assert len(result.model) == 1
        assert dict(result.model) == {1: True}


class TestSolveResultTruthiness:
    """Regression: ``SolveResult`` truthiness means *satisfiable*.

    A budget-limited or assumption query still returns a result object;
    code that wrote ``if result:`` used to read ambiguously (any object
    is truthy by default).  ``__bool__`` is pinned to ``satisfiable`` and
    documented; ``is None`` remains the way to distinguish "no answer".
    """

    def test_sat_result_is_truthy(self):
        solver = Solver()
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert bool(result) is True
        assert result  # idiomatic use

    def test_unsat_result_is_falsy_but_not_none(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve()
        assert result is not None
        assert bool(result) is False
        assert not result

    def test_unsat_under_assumptions_is_falsy(self):
        solver = Solver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1, -2])
        assert result is not None
        assert bool(result) is False
        # and the solver still answers the unconstrained query truthily
        assert bool(solver.solve()) is True
