"""Differential fuzzing of the CDCL solver against a brute-force oracle.

Seeded random-CNF instances keep CI deterministic: the generator is
parameterized by an explicit seed (override with ``REPRO_FUZZ_SEED`` to
explore), the instances stay small enough (<= 12 variables) that a full
truth-table enumeration is the oracle, and every discrepancy message
carries the seed/instance needed to replay it.

Three angles, matching how the synthesis engine drives the solver:

- plain satisfiability + model soundness,
- assumption queries (the shared-encoding mode's bread and butter),
- solver *reusability*: an UNSAT-under-assumptions query must not spoil
  the solver for later queries, incremental clause addition included.
"""

import itertools
import os
import random

import pytest

from repro.sat import Solver


FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20160807"))
ROUNDS = int(os.environ.get("REPRO_FUZZ_ROUNDS", "60"))


def random_cnf(rng, num_vars, num_clauses, max_width=3):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        lits = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append([v if rng.random() < 0.5 else -v for v in lits])
    return clauses


def brute_force(clauses, num_vars, fixed=None):
    """All-models oracle: is there a model extending ``fixed``?"""
    fixed = dict(fixed or {})
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if any(model[v] != val for v, val in fixed.items()):
            continue
        if all(
            any(model[abs(l)] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


def check_model(clauses, model):
    return all(
        any(model[abs(l)] == (l > 0) for l in clause) for clause in clauses
    )


def _instances():
    rng = random.Random(FUZZ_SEED)
    for index in range(ROUNDS):
        num_vars = rng.randint(3, 12)
        num_clauses = rng.randint(1, 4 * num_vars)
        yield index, rng.randint(0, 2 ** 31), num_vars, num_clauses


@pytest.mark.parametrize(
    "index,seed,num_vars,num_clauses",
    list(_instances()),
    ids=lambda value: str(value),
)
class TestRandomCnf:
    def test_agrees_with_brute_force(
        self, index, seed, num_vars, num_clauses
    ):
        rng = random.Random(seed)
        clauses = random_cnf(rng, num_vars, num_clauses)
        solver = Solver()
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        expected = brute_force(clauses, num_vars)
        if not ok:
            # add_clause already proved top-level UNSAT; the oracle must
            # agree, and solve() must report it too.
            assert not expected, (FUZZ_SEED, index)
            assert not solver.solve().satisfiable
            return
        result = solver.solve()
        assert result.satisfiable == expected, (FUZZ_SEED, index)
        if result.satisfiable:
            assert check_model(clauses, result.model), (FUZZ_SEED, index)

    def test_assumption_queries_agree(
        self, index, seed, num_vars, num_clauses
    ):
        rng = random.Random(seed)
        clauses = random_cnf(rng, num_vars, num_clauses)
        solver = Solver()
        if not all(solver.add_clause(cl) for cl in clauses):
            pytest.skip("top-level UNSAT: no assumption query to make")
        for _ in range(4):
            width = rng.randint(1, min(3, num_vars))
            chosen = rng.sample(range(1, num_vars + 1), width)
            assumptions = [
                v if rng.random() < 0.5 else -v for v in chosen
            ]
            fixed = {abs(l): l > 0 for l in assumptions}
            expected = brute_force(clauses, num_vars, fixed)
            result = solver.solve(assumptions=assumptions)
            assert result.satisfiable == expected, (
                FUZZ_SEED, index, assumptions,
            )
            if result.satisfiable:
                assert check_model(clauses, result.model)
                for lit in assumptions:
                    assert result.model[abs(lit)] == (lit > 0)

    def test_reusable_after_failed_assumption_query(
        self, index, seed, num_vars, num_clauses
    ):
        """An UNSAT-under-assumptions answer must leave the solver intact:
        the unconstrained query still answers correctly afterwards, and so
        does a query after adding one more clause (the incremental pattern
        the shared encoding relies on)."""
        rng = random.Random(seed)
        clauses = random_cnf(rng, num_vars, num_clauses)
        solver = Solver()
        if not all(solver.add_clause(cl) for cl in clauses):
            pytest.skip("top-level UNSAT")
        baseline = brute_force(clauses, num_vars)
        # Hunt for an assumption set the formula refutes.
        refuted = None
        for _ in range(16):
            chosen = rng.sample(
                range(1, num_vars + 1), rng.randint(1, num_vars)
            )
            assumptions = [
                v if rng.random() < 0.5 else -v for v in chosen
            ]
            fixed = {abs(l): l > 0 for l in assumptions}
            if not brute_force(clauses, num_vars, fixed):
                refuted = assumptions
                break
        if refuted is None:
            pytest.skip("no refutable assumption set found")
        assert not solver.solve(assumptions=refuted).satisfiable
        # The failed query must not have poisoned the solver state.
        assert solver.solve().satisfiable == baseline, (FUZZ_SEED, index)
        extra = [
            v if rng.random() < 0.5 else -v
            for v in rng.sample(range(1, num_vars + 1), 1)
        ]
        solver.add_clause(extra)
        expected = brute_force(clauses + [extra], num_vars)
        assert solver.solve().satisfiable == expected, (FUZZ_SEED, index)


class TestSolveResultTruthiness:
    """Regression: ``SolveResult`` truthiness means *satisfiable*.

    A budget-limited or assumption query still returns a result object;
    code that wrote ``if result:`` used to read ambiguously (any object
    is truthy by default).  ``__bool__`` is pinned to ``satisfiable`` and
    documented; ``is None`` remains the way to distinguish "no answer".
    """

    def test_sat_result_is_truthy(self):
        solver = Solver()
        solver.add_clause([1])
        result = solver.solve()
        assert result.satisfiable
        assert bool(result) is True
        assert result  # idiomatic use

    def test_unsat_result_is_falsy_but_not_none(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve()
        assert result is not None
        assert bool(result) is False
        assert not result

    def test_unsat_under_assumptions_is_falsy(self):
        solver = Solver()
        solver.add_clause([1, 2])
        result = solver.solve(assumptions=[-1, -2])
        assert result is not None
        assert bool(result) is False
        # and the solver still answers the unconstrained query truthily
        assert bool(solver.solve()) is True
