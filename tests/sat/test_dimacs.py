"""Tests for DIMACS serialization round-tripping."""

import pytest

from repro.sat import CNF
from repro.sat.dimacs import dumps, loads


def test_roundtrip():
    cnf = CNF()
    cnf.add_clause([1, -2, 3])
    cnf.add_clause([-1])
    cnf.add_clause([2, 3])
    text = dumps(cnf)
    parsed = loads(text)
    assert parsed.num_vars == cnf.num_vars
    assert list(parsed.clauses) == list(cnf.clauses)


def test_header_and_terminators():
    cnf = CNF()
    cnf.add_clause([1, 2])
    text = dumps(cnf)
    lines = text.strip().splitlines()
    assert lines[0] == "p cnf 2 1"
    assert lines[1] == "1 2 0"


def test_parse_with_comments():
    text = "c a comment\np cnf 3 2\n1 -3 0\nc another\n2 0\n"
    cnf = loads(text)
    assert cnf.num_clauses == 2
    assert cnf.clauses[0] == (1, -3)


def test_parse_multiline_clause():
    text = "p cnf 3 1\n1 2\n3 0\n"
    cnf = loads(text)
    assert cnf.clauses[0] == (1, 2, 3)


def test_missing_header_rejected():
    with pytest.raises(ValueError):
        loads("1 2 0\n")


def test_malformed_header_rejected():
    with pytest.raises(ValueError):
        loads("p sat 3\n1 0\n")


def test_cnf_var_allocation():
    cnf = CNF()
    a = cnf.new_var()
    b = cnf.new_var()
    assert (a, b) == (1, 2)
    cnf.add_clause([5])
    assert cnf.num_vars == 5
    assert cnf.new_var() == 6


def test_cnf_rejects_zero():
    cnf = CNF()
    with pytest.raises(ValueError):
        cnf.add_clause([0])


def test_cnf_rejects_negative_alloc():
    with pytest.raises(ValueError):
        CNF(-1)
    cnf = CNF()
    with pytest.raises(ValueError):
        cnf.new_vars(-2)
