"""Unit tests for the CDCL SAT solver."""

import itertools

import pytest

from repro.sat import Solver
from repro.sat.solver import BudgetExhausted


def check_model(clauses, model):
    for clause in clauses:
        if not any(model[abs(l)] == (l > 0) for l in clause):
            return False
    return True


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if check_model(clauses, model):
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve().satisfiable

    def test_single_unit(self):
        s = Solver()
        s.add_clause([1])
        res = s.solve()
        assert res.satisfiable
        assert res.model[1] is True

    def test_contradictory_units(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve().satisfiable

    def test_simple_sat(self):
        s = Solver()
        s.add_clauses([[1, 2], [-1, 2], [1, -2]])
        res = s.solve()
        assert res.satisfiable
        assert check_model([[1, 2], [-1, 2], [1, -2]], res.model)

    def test_simple_unsat(self):
        s = Solver()
        s.add_clauses([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        assert not s.solve().satisfiable

    def test_tautology_ignored(self):
        s = Solver()
        s.add_clause([1, -1])
        assert s.solve().satisfiable

    def test_duplicate_literals_merged(self):
        s = Solver()
        s.add_clause([1, 1, 1])
        res = s.solve()
        assert res.model[1] is True

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([0])

    def test_stats_exposed(self):
        s = Solver()
        s.add_clauses([[1, 2], [-1, 3], [-2, 3]])
        res = s.solve()
        assert res.propagations >= 0
        assert res.decisions >= 1


class TestAssumptions:
    def test_sat_under_assumption(self):
        s = Solver()
        s.add_clause([1, 2])
        res = s.solve(assumptions=[-1])
        assert res.satisfiable
        assert res.model[2] is True

    def test_unsat_under_assumption_recoverable(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-2, 1])
        assert not s.solve(assumptions=[-1]).satisfiable
        # Solver remains usable afterwards.
        assert s.solve().satisfiable
        assert s.solve(assumptions=[1]).satisfiable

    def test_conflicting_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[1, -1]).satisfiable

    def test_assumptions_respected_in_model(self):
        s = Solver()
        s.add_clauses([[1, 2, 3]])
        res = s.solve(assumptions=[-1, -2])
        assert res.satisfiable
        assert res.model[1] is False
        assert res.model[2] is False
        assert res.model[3] is True

    def test_learned_unit_negating_assumption(self):
        """A conflict under an assumption learns that assumption's negation
        as a level-0 unit: the assumed solve must come back UNSAT, and the
        solver must stay sound for later assumption-free calls."""
        s = Solver()
        s.add_clauses([[-1, 2], [-1, -2], [3, 4]])
        assert not s.solve(assumptions=[1]).satisfiable
        # The learned unit -1 is a real consequence of the clauses, so the
        # unassumed formula remains satisfiable and respects it.
        res = s.solve()
        assert res.satisfiable
        assert res.model[1] is False
        assert res.model[3] or res.model[4]
        # Re-assuming the refuted literal still reports UNSAT.
        assert not s.solve(assumptions=[1]).satisfiable
        assert s.solve(assumptions=[-1, 3]).satisfiable


class TestIncremental:
    def test_add_clauses_between_solves(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve().satisfiable
        s.add_clause([-1])
        res = s.solve()
        assert res.satisfiable and res.model[2] is True
        s.add_clause([-2])
        assert not s.solve().satisfiable

    def test_blocking_clause_enumeration(self):
        s = Solver()
        s.add_clause([1, 2])
        models = []
        while True:
            res = s.solve()
            if not res.satisfiable:
                break
            models.append((res.model[1], res.model[2]))
            block = [(-1 if res.model[1] else 1), (-2 if res.model[2] else 2)]
            s.add_clause(block)
        assert len(models) == 3
        assert (False, False) not in models


class TestPigeonhole:
    """Pigeonhole formulas exercise clause learning on genuinely hard UNSAT."""

    @staticmethod
    def pigeonhole(holes):
        pigeons = holes + 1
        clauses = []

        def v(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            clauses.append([v(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-v(p1, h), -v(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_unsat(self, holes):
        s = Solver()
        s.add_clauses(self.pigeonhole(holes))
        assert not s.solve().satisfiable

    def test_budget_exhaustion(self):
        s = Solver()
        s.add_clauses(self.pigeonhole(7))
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=5)

    def test_budget_is_exact(self):
        """A budgeted call raises at exactly the budgeted conflict count,
        never one past it -- callers folding ``exc.conflicts`` into a
        shared budget must not be able to overshoot it."""
        s = Solver()
        s.add_clauses(self.pigeonhole(7))
        with pytest.raises(BudgetExhausted) as info:
            s.solve(conflict_budget=5)
        assert info.value.conflicts == 5

    def test_add_clause_after_budget_miss(self):
        """Regression: BudgetExhausted used to leave the trail at a nonzero
        decision level, so the next add_clause raised RuntimeError."""
        s = Solver()
        s.add_clauses(self.pigeonhole(7))
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=5)
        assert s.add_clause([1, 2])
        # A level-0 contradiction added post-miss must be honoured.
        s.add_clause([100])
        assert not s.add_clause([-100])
        assert not s.solve().satisfiable

    def test_resume_solving_after_budget_miss(self):
        """A budget miss is a pause, not corruption: retrying with a larger
        budget converges to the right answer on the same solver."""
        s = Solver()
        s.add_clauses(self.pigeonhole(5))
        budget = 5
        misses = 0
        result = None
        while result is None:
            try:
                result = s.solve(conflict_budget=budget)
            except BudgetExhausted:
                misses += 1
                budget *= 4
        assert misses >= 1
        assert not result.satisfiable
        # And a satisfiable query on the same solver (new variables bridged
        # by a fresh clause) still completes after the misses.
        s.add_clause([101, 102])
        res = s.solve(assumptions=[-101])
        assert not res.satisfiable  # pigeonhole core is still UNSAT


class TestGraphColoring:
    """3-coloring instances: satisfiable structured problems with models."""

    @staticmethod
    def coloring_clauses(edges, nodes, colors=3):
        def v(n, c):
            return n * colors + c + 1

        clauses = []
        for n in range(nodes):
            clauses.append([v(n, c) for c in range(colors)])
            for c1 in range(colors):
                for c2 in range(c1 + 1, colors):
                    clauses.append([-v(n, c1), -v(n, c2)])
        for a, b in edges:
            for c in range(colors):
                clauses.append([-v(a, c), -v(b, c)])
        return clauses

    def test_cycle_even_2colorable(self):
        edges = [(i, (i + 1) % 6) for i in range(6)]
        clauses = self.coloring_clauses(edges, 6, colors=2)
        s = Solver()
        s.add_clauses(clauses)
        res = s.solve()
        assert res.satisfiable
        assert check_model(clauses, res.model)

    def test_odd_cycle_not_2colorable(self):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        s = Solver()
        s.add_clauses(self.coloring_clauses(edges, 5, colors=2))
        assert not s.solve().satisfiable

    def test_k4_3colorable_fails(self):
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        s = Solver()
        s.add_clauses(self.coloring_clauses(edges, 4, colors=3))
        assert not s.solve().satisfiable

    def test_petersen_3colorable(self):
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        edges = outer + inner + spokes
        clauses = self.coloring_clauses(edges, 10, colors=3)
        s = Solver()
        s.add_clauses(clauses)
        res = s.solve()
        assert res.satisfiable
        assert check_model(clauses, res.model)
