"""Unit tests for the CDCL SAT solver."""

import itertools

import pytest

from repro.sat import Solver
from repro.sat.solver import BudgetExhausted


def check_model(clauses, model):
    for clause in clauses:
        if not any(model[abs(l)] == (l > 0) for l in clause):
            return False
    return True


def brute_force_sat(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if check_model(clauses, model):
            return True
    return False


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve().satisfiable

    def test_single_unit(self):
        s = Solver()
        s.add_clause([1])
        res = s.solve()
        assert res.satisfiable
        assert res.model[1] is True

    def test_contradictory_units(self):
        s = Solver()
        s.add_clause([1])
        assert not s.add_clause([-1])
        assert not s.solve().satisfiable

    def test_simple_sat(self):
        s = Solver()
        s.add_clauses([[1, 2], [-1, 2], [1, -2]])
        res = s.solve()
        assert res.satisfiable
        assert check_model([[1, 2], [-1, 2], [1, -2]], res.model)

    def test_simple_unsat(self):
        s = Solver()
        s.add_clauses([[1, 2], [-1, 2], [1, -2], [-1, -2]])
        assert not s.solve().satisfiable

    def test_tautology_ignored(self):
        s = Solver()
        s.add_clause([1, -1])
        assert s.solve().satisfiable

    def test_duplicate_literals_merged(self):
        s = Solver()
        s.add_clause([1, 1, 1])
        res = s.solve()
        assert res.model[1] is True

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Solver().add_clause([0])

    def test_stats_exposed(self):
        s = Solver()
        s.add_clauses([[1, 2], [-1, 3], [-2, 3]])
        res = s.solve()
        assert res.propagations >= 0
        assert res.decisions >= 1


class TestAssumptions:
    def test_sat_under_assumption(self):
        s = Solver()
        s.add_clause([1, 2])
        res = s.solve(assumptions=[-1])
        assert res.satisfiable
        assert res.model[2] is True

    def test_unsat_under_assumption_recoverable(self):
        s = Solver()
        s.add_clause([1, 2])
        s.add_clause([-2, 1])
        assert not s.solve(assumptions=[-1]).satisfiable
        # Solver remains usable afterwards.
        assert s.solve().satisfiable
        assert s.solve(assumptions=[1]).satisfiable

    def test_conflicting_assumptions(self):
        s = Solver()
        s.add_clause([1, 2])
        assert not s.solve(assumptions=[1, -1]).satisfiable

    def test_assumptions_respected_in_model(self):
        s = Solver()
        s.add_clauses([[1, 2, 3]])
        res = s.solve(assumptions=[-1, -2])
        assert res.satisfiable
        assert res.model[1] is False
        assert res.model[2] is False
        assert res.model[3] is True


class TestIncremental:
    def test_add_clauses_between_solves(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve().satisfiable
        s.add_clause([-1])
        res = s.solve()
        assert res.satisfiable and res.model[2] is True
        s.add_clause([-2])
        assert not s.solve().satisfiable

    def test_blocking_clause_enumeration(self):
        s = Solver()
        s.add_clause([1, 2])
        models = []
        while True:
            res = s.solve()
            if not res.satisfiable:
                break
            models.append((res.model[1], res.model[2]))
            block = [(-1 if res.model[1] else 1), (-2 if res.model[2] else 2)]
            s.add_clause(block)
        assert len(models) == 3
        assert (False, False) not in models


class TestPigeonhole:
    """Pigeonhole formulas exercise clause learning on genuinely hard UNSAT."""

    @staticmethod
    def pigeonhole(holes):
        pigeons = holes + 1
        clauses = []

        def v(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            clauses.append([v(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-v(p1, h), -v(p2, h)])
        return clauses

    @pytest.mark.parametrize("holes", [2, 3, 4, 5])
    def test_unsat(self, holes):
        s = Solver()
        s.add_clauses(self.pigeonhole(holes))
        assert not s.solve().satisfiable

    def test_budget_exhaustion(self):
        s = Solver()
        s.add_clauses(self.pigeonhole(7))
        with pytest.raises(BudgetExhausted):
            s.solve(conflict_budget=5)


class TestGraphColoring:
    """3-coloring instances: satisfiable structured problems with models."""

    @staticmethod
    def coloring_clauses(edges, nodes, colors=3):
        def v(n, c):
            return n * colors + c + 1

        clauses = []
        for n in range(nodes):
            clauses.append([v(n, c) for c in range(colors)])
            for c1 in range(colors):
                for c2 in range(c1 + 1, colors):
                    clauses.append([-v(n, c1), -v(n, c2)])
        for a, b in edges:
            for c in range(colors):
                clauses.append([-v(a, c), -v(b, c)])
        return clauses

    def test_cycle_even_2colorable(self):
        edges = [(i, (i + 1) % 6) for i in range(6)]
        clauses = self.coloring_clauses(edges, 6, colors=2)
        s = Solver()
        s.add_clauses(clauses)
        res = s.solve()
        assert res.satisfiable
        assert check_model(clauses, res.model)

    def test_odd_cycle_not_2colorable(self):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        s = Solver()
        s.add_clauses(self.coloring_clauses(edges, 5, colors=2))
        assert not s.solve().satisfiable

    def test_k4_3colorable_fails(self):
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        s = Solver()
        s.add_clauses(self.coloring_clauses(edges, 4, colors=3))
        assert not s.solve().satisfiable

    def test_petersen_3colorable(self):
        outer = [(i, (i + 1) % 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        edges = outer + inner + spokes
        clauses = self.coloring_clauses(edges, 10, colors=3)
        s = Solver()
        s.add_clauses(clauses)
        res = s.solve()
        assert res.satisfiable
        assert check_model(clauses, res.model)
