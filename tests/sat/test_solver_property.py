"""Property-based tests: the solver agrees with brute force on random CNFs."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.sat import Solver

MAX_VARS = 6


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=MAX_VARS))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = []
        for _ in range(width):
            var = draw(st.integers(min_value=1, max_value=num_vars))
            sign = draw(st.booleans())
            clause.append(var if sign else -var)
        clauses.append(clause)
    return num_vars, clauses


def brute_force(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            return model
    return None


@given(random_cnf())
@settings(max_examples=200, deadline=None)
def test_agrees_with_brute_force(problem):
    num_vars, clauses = problem
    expected = brute_force(num_vars, clauses)
    solver = Solver()
    solver.add_clauses(clauses)
    result = solver.solve()
    assert result.satisfiable == (expected is not None)
    if result.satisfiable:
        for clause in clauses:
            assert any(result.model[abs(l)] == (l > 0) for l in clause)


@given(random_cnf(), st.lists(st.integers(min_value=1, max_value=MAX_VARS), max_size=3))
@settings(max_examples=150, deadline=None)
def test_assumptions_agree_with_added_units(problem, assumed_vars):
    """solve(assumptions=A) must match solving the formula with A as units."""
    num_vars, clauses = problem
    assumptions = [v for v in assumed_vars if v <= num_vars]
    with_units = clauses + [[a] for a in assumptions]
    expected = brute_force(num_vars, with_units)

    solver = Solver()
    solver.add_clauses(clauses)
    result = solver.solve(assumptions=assumptions)
    assert result.satisfiable == (expected is not None)
    # Assumption solving must not poison later unconstrained solves.
    baseline = brute_force(num_vars, clauses)
    assert solver.solve().satisfiable == (baseline is not None)


@given(random_cnf())
@settings(max_examples=60, deadline=None)
def test_enumeration_finds_all_models(problem):
    """Blocking-clause enumeration yields exactly the brute-force model set."""
    num_vars, clauses = problem
    all_models = set()
    for bits in itertools.product([False, True], repeat=num_vars):
        model = {v + 1: bits[v] for v in range(num_vars)}
        if all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses):
            all_models.add(bits)

    solver = Solver()
    solver.ensure_var(num_vars)
    solver.add_clauses(clauses)
    found = set()
    for _ in range(2 ** num_vars + 1):
        res = solver.solve()
        if not res.satisfiable:
            break
        bits = tuple(res.model[v + 1] for v in range(num_vars))
        assert bits not in found, "enumeration repeated a model"
        found.add(bits)
        solver.add_clause(
            [(-(v + 1) if res.model[v + 1] else (v + 1)) for v in range(num_vars)]
        )
    assert found == all_models
