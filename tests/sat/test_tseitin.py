"""Tests for boolean circuits and the Tseitin encoder."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.sat import CNF, Solver
from repro.sat import tseitin as ts


class TestFolding:
    def test_constants(self):
        assert ts.and_() is ts.TRUE
        assert ts.or_() is ts.FALSE
        assert ts.not_(ts.TRUE) is ts.FALSE
        assert ts.not_(ts.FALSE) is ts.TRUE

    def test_double_negation(self):
        v = ts.var(1)
        assert ts.not_(ts.not_(v)) is v

    def test_and_short_circuit(self):
        v = ts.var(1)
        assert ts.and_(v, ts.FALSE) is ts.FALSE
        assert ts.and_(v, ts.TRUE) == v

    def test_or_short_circuit(self):
        v = ts.var(1)
        assert ts.or_(v, ts.TRUE) is ts.TRUE
        assert ts.or_(v, ts.FALSE) == v

    def test_complementary_literals(self):
        v = ts.var(1)
        assert ts.and_(v, ts.not_(v)) is ts.FALSE
        assert ts.or_(v, ts.not_(v)) is ts.TRUE

    def test_flattening(self):
        a, b, c = ts.var(1), ts.var(2), ts.var(3)
        node = ts.and_(ts.and_(a, b), c)
        assert node.kind == "and"
        assert len(node.children) == 3

    def test_idempotence(self):
        a = ts.var(1)
        assert ts.and_(a, a) == a
        assert ts.or_(a, a) == a

    def test_hash_consing_var(self):
        assert ts.var(5) is ts.var(5)

    def test_implies_iff(self):
        a, b = ts.var(1), ts.var(2)
        model_tt = {1: True, 2: True}
        model_tf = {1: True, 2: False}
        assert ts.evaluate(ts.implies(a, b), model_tt)
        assert not ts.evaluate(ts.implies(a, b), model_tf)
        assert ts.evaluate(ts.iff(a, b), model_tt)
        assert not ts.evaluate(ts.iff(a, b), model_tf)


@st.composite
def circuits(draw, max_var=4, depth=4):
    if depth == 0:
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return ts.TRUE
        if choice == 1:
            return ts.FALSE
        return ts.var(draw(st.integers(min_value=1, max_value=max_var)))
    kind = draw(st.sampled_from(["var", "not", "and", "or", "ite"]))
    if kind == "var":
        return ts.var(draw(st.integers(min_value=1, max_value=max_var)))
    if kind == "not":
        return ts.not_(draw(circuits(max_var=max_var, depth=depth - 1)))
    if kind == "ite":
        c = draw(circuits(max_var=max_var, depth=depth - 1))
        t = draw(circuits(max_var=max_var, depth=depth - 1))
        e = draw(circuits(max_var=max_var, depth=depth - 1))
        return ts.ite(c, t, e)
    arity = draw(st.integers(min_value=2, max_value=3))
    children = [draw(circuits(max_var=max_var, depth=depth - 1)) for _ in range(arity)]
    return ts.and_(*children) if kind == "and" else ts.or_(*children)


MAX_VAR = 4


@given(circuits(max_var=MAX_VAR))
@settings(max_examples=200, deadline=None)
def test_tseitin_equisatisfiable(circuit):
    """assert_node(circuit) is satisfiable iff some input assignment makes
    the circuit true, and the found model's projection satisfies it."""
    truth_sat = any(
        ts.evaluate(circuit, {v + 1: bits[v] for v in range(MAX_VAR)})
        for bits in itertools.product([False, True], repeat=MAX_VAR)
    )
    cnf = CNF(MAX_VAR)
    enc = ts.TseitinEncoder(cnf)
    enc.assert_node(circuit)
    solver = Solver()
    solver.ensure_var(MAX_VAR)
    solver.add_clauses(cnf.clauses)
    result = solver.solve()
    assert result.satisfiable == truth_sat
    if result.satisfiable:
        projection = {v: result.model[v] for v in range(1, MAX_VAR + 1)}
        assert ts.evaluate(circuit, projection)


@given(circuits(max_var=MAX_VAR), circuits(max_var=MAX_VAR))
@settings(max_examples=100, deadline=None)
def test_shared_subterms_single_aux(c1, c2):
    """Encoding the same node twice must not duplicate auxiliary variables."""
    cnf = CNF(MAX_VAR)
    enc = ts.TseitinEncoder(cnf)
    combined = ts.and_(ts.or_(c1, c2), ts.or_(c1, c2))
    before = cnf.num_vars
    enc.assert_node(combined)
    first_aux = cnf.num_vars
    enc.assert_node(combined)
    assert cnf.num_vars == first_aux or cnf.num_vars == before
