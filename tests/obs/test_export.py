"""Exporters: span JSONL -> Chrome trace-event JSON round-trip, Prometheus
text-exposition conformance (validated with a mini-parser), and the
stdlib /metrics HTTP endpoint."""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    JsonlTracer,
    MetricsRegistry,
    SpanRecord,
    chrome_trace,
    cost_metrics_snapshot,
    make_metrics_server,
    read_events,
    render_prometheus,
    sanitize_metric_name,
    write_chrome_trace,
)
from repro.obs.export import escape_label_value, format_labels


def _span(name, span_id, pid, start=100.0, seconds=0.5, parent=None,
          open_=False):
    return SpanRecord(
        name=name,
        span_id=span_id,
        parent_id=parent,
        start=start,
        seconds=seconds,
        attrs={},
        pid=pid,
        open=open_,
    )


class TestChromeTrace:
    def test_one_track_per_pid_with_metadata(self):
        spans = [
            _span("pipeline.run", "1-1", pid=1000),
            _span("pipeline.task", "2-1", pid=2000),
            _span("pipeline.task", "3-1", pid=3000),
        ]
        trace = chrome_trace(spans)
        events = trace["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(names) == {1000, 2000, 3000}
        assert "orchestrator" in names[1000]
        assert "worker" in names[2000]
        assert "worker" in names[3000]

    def test_complete_events_microseconds(self):
        trace = chrome_trace([_span("s", "1-1", pid=1, start=2.0, seconds=0.25)])
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 1
        assert complete[0]["ts"] == 2_000_000
        assert complete[0]["dur"] == 250_000

    def test_open_span_becomes_begin_event(self):
        spans = [
            _span("done", "1-1", pid=1),
            _span("killed", "1-2", pid=1, open_=True),
        ]
        trace = chrome_trace(spans)
        by_phase = {}
        for e in trace["traceEvents"]:
            by_phase.setdefault(e["ph"], []).append(e["name"])
        assert "done" in by_phase["X"]
        assert by_phase["B"] == ["killed"]

    def test_heartbeats_become_counter_tracks(self):
        beat = {
            "event": "progress",
            "ts": 5.0,
            "pid": 777,
            "conflicts": 512,
            "conflicts_per_sec": 1000.0,
            "learned": 64,
            "trail": 30,
        }
        trace = chrome_trace([_span("s", "1-1", pid=1)], [beat])
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "sat.conflicts",
            "sat.conflicts_per_sec",
            "sat.learned",
            "sat.trail",
        }
        assert all(e["pid"] == 777 for e in counters)
        assert all(e["ts"] == 5_000_000 for e in counters)
        # The heartbeat-only pid still gets a named track.
        metadata_pids = {
            e["pid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert 777 in metadata_pids

    def test_from_real_parallel_style_trace_file(self, tmp_path):
        """End to end: JSONL written by tracers in two 'processes' (one
        killed mid-span) converts to a loadable Chrome trace."""
        path = tmp_path / "t.jsonl"
        t = JsonlTracer(str(path))
        try:
            with t.span("pipeline.run"):
                with t.span("pipeline.task", task=1):
                    pass
                doomed = t.span("pipeline.task", task=2)
                doomed.__enter__()  # never exited: simulated kill
        finally:
            from repro.obs import trace as trace_module

            trace_module._current_span_id.set(None)
            trace_module._current_trace_id.set(None)
            t.close()
        spans, events = read_events(str(path))
        out = tmp_path / "chrome.json"
        count = write_chrome_trace(str(out), spans, events)
        data = json.loads(out.read_text())
        assert data["displayTimeUnit"] == "ms"
        assert len(data["traceEvents"]) == count
        phases = [e["ph"] for e in data["traceEvents"]]
        assert phases.count("B") == 1  # the killed task
        assert phases.count("X") == 2  # run + completed task
        json.dumps(data)  # whole object must be JSON-serializable


def _parse_exposition(text):
    """Mini Prometheus text-format parser: validates structure, returns
    {metric_name: value} plus the TYPE declarations."""
    types = {}
    values = {}
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? "
        r"(-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
    )
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) == 4
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "summary")
            types[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        match = sample_re.match(line)
        assert match, f"malformed sample line: {line!r}"
        name, labels, value = match.groups()
        values[name + (labels or "")] = value
    return types, values


class TestPrometheus:
    def test_sanitize(self):
        assert sanitize_metric_name("sat.conflicts") == "repro_sat_conflicts"
        assert sanitize_metric_name("a-b c") == "repro_a_b_c"
        assert sanitize_metric_name("").startswith("repro_")

    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("sat.conflicts").inc(42)
        registry.gauge("pool.size").set(3.0)
        types, values = _parse_exposition(
            render_prometheus(registry.snapshot())
        )
        assert types["repro_sat_conflicts_total"] == "counter"
        assert values["repro_sat_conflicts_total"] == "42"
        assert types["repro_pool_size"] == "gauge"
        assert values["repro_pool_size"] == "3"

    def test_bucketed_histogram_cumulative_with_inf(self):
        registry = MetricsRegistry()
        h = registry.histogram("solve.seconds", bounds=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 0.7, 5.0, 50.0):
            h.observe(value)
        types, values = _parse_exposition(
            render_prometheus(registry.snapshot())
        )
        assert types["repro_solve_seconds"] == "histogram"
        assert values['repro_solve_seconds_bucket{le="0.1"}'] == "1"
        assert values['repro_solve_seconds_bucket{le="1"}'] == "3"
        assert values['repro_solve_seconds_bucket{le="10"}'] == "4"
        assert values['repro_solve_seconds_bucket{le="+Inf"}'] == "5"
        assert values["repro_solve_seconds_count"] == "5"
        # +Inf bucket must equal _count (Prometheus invariant).
        assert (
            values['repro_solve_seconds_bucket{le="+Inf"}']
            == values["repro_solve_seconds_count"]
        )

    def test_unbucketed_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 9.0):
            registry.histogram("sizes").observe(value)
        types, values = _parse_exposition(
            render_prometheus(registry.snapshot())
        )
        assert types["repro_sizes"] == "summary"
        assert values["repro_sizes_count"] == "3"
        assert values["repro_sizes_sum"] == "12"
        assert values["repro_sizes_min"] == "1"
        assert values["repro_sizes_max"] == "9"

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        text = render_prometheus(
            registry.snapshot(), help_texts={"c": "line\nbreak \\ slash"}
        )
        help_line = next(
            line for line in text.splitlines() if line.startswith("# HELP")
        )
        assert "\n" not in help_line
        assert "line\\nbreak \\\\ slash" in help_line

    def test_empty_snapshot(self):
        assert render_prometheus({}) == ""

    def test_real_run_report_metrics_parse(self):
        """A registry populated the way the pipeline populates it renders a
        fully parseable exposition."""
        registry = MetricsRegistry()
        registry.counter("sat.conflicts").inc(100)
        registry.counter("cache.hits").inc(7)
        registry.histogram("ame.cfg_count").observe(17)
        registry.histogram(
            "task.seconds", bounds=[0.01, 0.1, 1.0]
        ).observe(0.05)
        text = render_prometheus(registry.snapshot())
        types, values = _parse_exposition(text)
        assert len(types) >= 4
        assert text.endswith("\n")


class TestLabels:
    def test_format_labels_sorted_and_quoted(self):
        rendered = format_labels({"b": "two", "a": 1})
        assert rendered == '{a="1",b="two"}'
        assert format_labels({}) == ""

    def test_escaping_quotes_backslashes_newlines(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("line\nbreak") == "line\\nbreak"
        rendered = format_labels({"device": 'ph"one\\1'})
        assert rendered == '{device="ph\\"one\\\\1"}'
        assert "\n" not in format_labels({"k": "a\nb"})

    def test_label_names_sanitized(self):
        assert format_labels({"trace-id": "x"}) == '{trace_id="x"}'

    def test_labeled_counter_samples_render_one_line_each(self):
        snapshot = {
            "cost.conflicts": {
                "type": "counter",
                "samples": [
                    {"labels": {"device": "a", "signature": "s1"}, "value": 3},
                    {"labels": {"device": "b", "signature": "s2"}, "value": 4},
                ],
            }
        }
        types, values = _parse_exposition(render_prometheus(snapshot))
        assert types["repro_cost_conflicts_total"] == "counter"
        key_a = 'repro_cost_conflicts_total{device="a",signature="s1"}'
        key_b = 'repro_cost_conflicts_total{device="b",signature="s2"}'
        assert values[key_a] == "3"
        assert values[key_b] == "4"

    def test_hostile_label_values_stay_parseable(self):
        snapshot = {
            "cost.wall_seconds": {
                "type": "gauge",
                "samples": [
                    {"labels": {"bundle": 'app "v1.0\\beta"'}, "value": 1.5}
                ],
            }
        }
        text = render_prometheus(snapshot)
        (sample_line,) = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        # The value field must still be the last space-separated token and
        # every inner quote escaped -- a quote or backslash in a bundle
        # name must never terminate the label string early.
        assert sample_line.endswith("} 1.5")
        assert '\\"v1.0\\\\beta\\"' in sample_line


class TestCostSnapshot:
    def test_entries_become_labeled_counter_series(self):
        entries = [
            {
                "trace_id": "t1",
                "device": "phone",
                "bundle": "a,b",
                "signature": "*",
                "conflicts": 12,
                "wall_seconds": 0.5,
                "cache_hits": 0,  # zero meters are skipped
            }
        ]
        snapshot = cost_metrics_snapshot(entries)
        assert "cost.cache_hits" not in snapshot
        conflicts = snapshot["cost.conflicts"]
        assert conflicts["type"] == "counter"
        (sample,) = conflicts["samples"]
        assert sample["value"] == 12
        assert sample["labels"] == {
            "trace_id": "t1",
            "device": "phone",
            "bundle": "a,b",
            "signature": "*",
        }
        # End to end: the snapshot renders as parseable exposition with
        # the attribution key as labels.
        types, values = _parse_exposition(render_prometheus(snapshot))
        assert types["repro_cost_conflicts_total"] == "counter"
        assert any("repro_cost_wall_seconds_total{" in k for k in values)

    def test_empty_entries_render_nothing(self):
        assert cost_metrics_snapshot([]) == {}
        assert render_prometheus(cost_metrics_snapshot([])) == ""

    def test_merges_into_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("service.requests").inc(2)
        combined = dict(registry.snapshot())
        combined.update(
            cost_metrics_snapshot(
                [{"trace_id": "t", "conflicts": 1, "device": "d"}]
            )
        )
        types, values = _parse_exposition(render_prometheus(combined))
        assert "repro_service_requests_total" in values
        assert types["repro_cost_conflicts_total"] == "counter"


class TestMetricsServer:
    def test_serves_exposition_and_404(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        server = make_metrics_server(registry.snapshot, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics"
            ) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                body = resp.read().decode()
            types, values = _parse_exposition(body)
            assert values["repro_hits_total"] == "3"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"http://127.0.0.1:{port}/other")
        finally:
            server.shutdown()
            server.server_close()
