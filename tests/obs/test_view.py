"""Trace rendering: aggregation, self time, tree layout, hotspots -- and
termination on malformed traces."""

from repro.obs import SpanRecord, aggregate_spans, render_hotspots, render_span_tree
from repro.obs.view import self_seconds


def rec(name, span_id, parent_id=None, start=0.0, seconds=1.0, **attrs):
    return SpanRecord(
        name=name, span_id=span_id, parent_id=parent_id,
        start=start, seconds=seconds, attrs=attrs, pid=1,
    )


class TestAggregation:
    def test_self_time_subtracts_direct_children(self):
        records = [
            rec("root", "r", seconds=10.0),
            rec("child", "c1", parent_id="r", seconds=3.0),
            rec("child", "c2", parent_id="r", seconds=4.0),
        ]
        selfs = self_seconds(records)
        assert selfs["r"] == 3.0  # 10 - (3 + 4)
        assert selfs["c1"] == 3.0 and selfs["c2"] == 4.0

    def test_self_time_clamped_at_zero(self):
        # Children measured longer than the parent (clock jitter) must not
        # produce negative self time.
        records = [
            rec("root", "r", seconds=1.0),
            rec("child", "c", parent_id="r", seconds=2.0),
        ]
        assert self_seconds(records)["r"] == 0.0

    def test_aggregate_by_name(self):
        records = [
            rec("work", "a", seconds=2.0),
            rec("work", "b", seconds=6.0),
            rec("other", "c", seconds=1.0),
        ]
        agg = aggregate_spans(records)
        assert agg["work"] == {
            "count": 2, "total_seconds": 8.0,
            "self_seconds": 8.0, "max_seconds": 6.0,
        }
        assert list(agg) == sorted(agg)

    def test_orphan_parent_treated_as_root(self):
        # A parent that never flushed (e.g. killed worker) is absent from
        # the file; its children still aggregate and render.
        records = [rec("lost", "x", parent_id="never-written", seconds=2.0)]
        assert aggregate_spans(records)["lost"]["count"] == 1
        assert "lost" in render_span_tree(records)


class TestTree:
    def test_nested_layout(self):
        records = [
            rec("root", "r", start=0.0, seconds=5.0),
            rec("first", "a", parent_id="r", start=1.0, seconds=1.0),
            rec("second", "b", parent_id="r", start=2.0, seconds=1.0, n=3),
        ]
        tree = render_span_tree(records)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert "|- first" in lines[1]  # ordered by start time
        assert "`- second {n=3}" in lines[2]

    def test_max_depth_truncates(self):
        records = [
            rec("root", "r", seconds=3.0),
            rec("mid", "m", parent_id="r", seconds=2.0),
            rec("leaf", "l", parent_id="m", seconds=1.0),
        ]
        tree = render_span_tree(records, max_depth=2)
        assert "mid" in tree and "leaf" not in tree

    def test_empty_trace(self):
        assert render_span_tree([]) == "(empty trace)"

    def test_self_parented_span_terminates(self):
        records = [rec("weird", "x", parent_id="x", seconds=1.0)]
        assert "weird" in render_span_tree(records)

    def test_duplicate_span_ids_terminate(self):
        # Two processes once stamped identical ids (fork bug); rendering
        # such a malformed trace must finish, not walk a cycle.
        records = [
            rec("a", "1", parent_id="2", seconds=1.0),
            rec("b", "2", parent_id="1", seconds=1.0),
            rec("a", "1", parent_id=None, seconds=1.0),
        ]
        tree = render_span_tree(records)
        assert tree.count("a") >= 1


class TestHotspots:
    def test_ranked_by_self_time(self):
        records = [
            rec("cheap_wrapper", "r", seconds=10.0),
            rec("hot_inner", "h", parent_id="r", seconds=9.5),
        ]
        table = render_hotspots(records, top=5)
        lines = table.splitlines()
        assert "hot_inner" in lines[2]  # header, rule, then hottest first
        assert "cheap_wrapper" in lines[3]

    def test_top_limits_rows(self):
        records = [rec(f"n{i}", str(i), seconds=float(i + 1)) for i in range(6)]
        table = render_hotspots(records, top=2)
        assert len(table.splitlines()) == 4  # header + rule + 2 rows

    def test_empty(self):
        assert render_hotspots([]) == "(no spans)"
