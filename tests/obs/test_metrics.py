"""The metrics registry: instruments, snapshots, cross-process merging,
and the no-op registry's zero-cost guarantee."""

import json

import pytest

from repro.obs import (
    METRICS_ENV,
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    set_metrics,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    previous = set_metrics(reg)
    yield reg
    set_metrics(previous)


class TestInstruments:
    def test_counter(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5

    def test_histogram_summary(self, registry):
        for v in (2.0, 8.0, 5.0):
            registry.histogram("h").observe(v)
        h = registry.histogram("h")
        assert (h.count, h.total, h.min, h.max, h.mean) == (3, 15.0, 2.0, 8.0, 5.0)

    def test_same_name_same_instrument(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_snapshot_is_sorted_and_json_ready(self, registry):
        registry.counter("z.count").inc()
        registry.gauge("a.level").set(2.0)
        registry.histogram("m.sizes").observe(7)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise
        assert snap["z.count"] == {"type": "counter", "value": 1}
        assert snap["m.sizes"]["mean"] == 7

    def test_reset_clears(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestMerge:
    def test_counters_add(self, registry):
        registry.counter("c").inc(2)
        other = MetricsRegistry()
        other.counter("c").inc(3)
        other.counter("new").inc()
        registry.merge(other.snapshot())
        assert registry.counter("c").value == 5
        assert registry.counter("new").value == 1

    def test_gauges_take_incoming(self, registry):
        registry.gauge("g").set(1.0)
        other = MetricsRegistry()
        other.gauge("g").set(9.0)
        registry.merge(other.snapshot())
        assert registry.gauge("g").value == 9.0

    def test_histograms_widen(self, registry):
        registry.histogram("h").observe(5.0)
        other = MetricsRegistry()
        other.histogram("h").observe(1.0)
        other.histogram("h").observe(10.0)
        registry.merge(other.snapshot())
        h = registry.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (3, 16.0, 1.0, 10.0)

    def test_merge_into_empty_equals_source(self, registry):
        other = MetricsRegistry()
        other.counter("c").inc(2)
        other.histogram("h").observe(4.0)
        registry.merge(other.snapshot())
        assert registry.snapshot() == other.snapshot()


class TestDisabled:
    def test_null_registry_hands_out_shared_noop(self):
        reg = NullMetricsRegistry()
        c = reg.counter("a")
        assert c is reg.counter("b") is reg.gauge("g") is reg.histogram("h")
        c.inc(100)
        c.observe(5.0)
        c.set(3.0)
        assert c.value == 0 and c.count == 0
        assert reg.snapshot() == {}
        assert reg.enabled is False

    def test_null_merge_is_inert(self):
        reg = NullMetricsRegistry()
        reg.merge({"c": {"type": "counter", "value": 5}})
        assert reg.snapshot() == {}

    def test_enable_metrics_installs_and_flags_workers(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        previous = get_metrics()
        try:
            reg = enable_metrics()
            import os

            assert get_metrics() is reg
            assert reg.enabled
            assert os.environ.get(METRICS_ENV) == "1"
        finally:
            set_metrics(previous)
            monkeypatch.delenv(METRICS_ENV, raising=False)

    def test_default_is_null(self):
        assert isinstance(NULL_METRICS, NullMetricsRegistry)
