"""The metrics registry: instruments, snapshots, cross-process merging,
and the no-op registry's zero-cost guarantee."""

import json

import pytest

from repro.obs import (
    METRICS_ENV,
    NULL_METRICS,
    MetricsRegistry,
    NullMetricsRegistry,
    enable_metrics,
    get_metrics,
    set_metrics,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    previous = set_metrics(reg)
    yield reg
    set_metrics(previous)


class TestInstruments:
    def test_counter(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("g").set(3.0)
        registry.gauge("g").set(1.5)
        assert registry.gauge("g").value == 1.5

    def test_histogram_summary(self, registry):
        for v in (2.0, 8.0, 5.0):
            registry.histogram("h").observe(v)
        h = registry.histogram("h")
        assert (h.count, h.total, h.min, h.max, h.mean) == (3, 15.0, 2.0, 8.0, 5.0)

    def test_same_name_same_instrument(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_snapshot_is_sorted_and_json_ready(self, registry):
        registry.counter("z.count").inc()
        registry.gauge("a.level").set(2.0)
        registry.histogram("m.sizes").observe(7)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must not raise
        assert snap["z.count"] == {"type": "counter", "value": 1}
        assert snap["m.sizes"]["mean"] == 7

    def test_reset_clears(self, registry):
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {}


class TestMerge:
    def test_counters_add(self, registry):
        registry.counter("c").inc(2)
        other = MetricsRegistry()
        other.counter("c").inc(3)
        other.counter("new").inc()
        registry.merge(other.snapshot())
        assert registry.counter("c").value == 5
        assert registry.counter("new").value == 1

    def test_gauges_take_incoming(self, registry):
        registry.gauge("g").set(1.0)
        other = MetricsRegistry()
        other.gauge("g").set(9.0)
        registry.merge(other.snapshot())
        assert registry.gauge("g").value == 9.0

    def test_histograms_widen(self, registry):
        registry.histogram("h").observe(5.0)
        other = MetricsRegistry()
        other.histogram("h").observe(1.0)
        other.histogram("h").observe(10.0)
        registry.merge(other.snapshot())
        h = registry.histogram("h")
        assert (h.count, h.total, h.min, h.max) == (3, 16.0, 1.0, 10.0)

    def test_merge_into_empty_equals_source(self, registry):
        other = MetricsRegistry()
        other.counter("c").inc(2)
        other.histogram("h").observe(4.0)
        registry.merge(other.snapshot())
        assert registry.snapshot() == other.snapshot()


class TestBucketedHistogram:
    def test_observe_le_semantics(self, registry):
        h = registry.histogram("h", bounds=[1.0, 10.0])
        for v in (0.5, 1.0, 5.0, 10.0, 100.0):
            h.observe(v)
        # le semantics: boundary values land in the bucket they bound.
        assert h.bucket_counts == [2, 2, 1]
        assert h.cumulative_buckets() == [
            (1.0, 2),
            (10.0, 4),
            (float("inf"), 5),
        ]

    def test_bounds_normalized(self, registry):
        h = registry.histogram("h", bounds=[10, 1, 1.0])
        assert h.bounds == (1.0, 10.0)

    def test_snapshot_keys_only_when_bucketed(self, registry):
        registry.histogram("plain").observe(1.0)
        registry.histogram("bucketed", bounds=[1.0]).observe(1.0)
        snap = registry.snapshot()
        assert "bounds" not in snap["plain"]
        assert "buckets" not in snap["plain"]
        assert snap["bucketed"]["bounds"] == [1.0]
        assert snap["bucketed"]["buckets"] == [1, 0]

    def test_rerequest_with_different_bounds_raises(self, registry):
        registry.histogram("h", bounds=[1.0, 2.0])
        with pytest.raises(ValueError):
            registry.histogram("h", bounds=[1.0, 3.0])
        # Omitting bounds returns the existing instrument unchanged.
        assert registry.histogram("h").bounds == (1.0, 2.0)


class TestBucketedMerge:
    def test_identical_bounds_add_elementwise(self, registry):
        registry.histogram("h", bounds=[1.0, 10.0]).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", bounds=[1.0, 10.0]).observe(5.0)
        other.histogram("h").observe(50.0)
        registry.merge(other.snapshot())
        h = registry.histogram("h")
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3

    def test_fresh_local_adopts_incoming_bounds(self, registry):
        """The worker-snapshot path: the parent has never seen the metric,
        so it must take the worker's buckets wholesale, not degrade them."""
        other = MetricsRegistry()
        other.histogram("h", bounds=[1.0, 2.0]).observe(1.5)
        registry.merge(other.snapshot())
        h = registry.histogram("h")
        assert h.bounds == (1.0, 2.0)
        assert h.bucket_counts == [0, 1, 0]

    def test_subset_bounds_coarsen_exactly(self, registry):
        """Bounds that share a subset coarsen onto the intersection; counts
        sum across whole intervals, so nothing is invented or lost."""
        mine = registry.histogram("h", bounds=[1.0, 5.0, 10.0])
        for v in (0.5, 3.0, 7.0, 20.0):
            mine.observe(v)
        other = MetricsRegistry()
        theirs = other.histogram("h", bounds=[5.0, 10.0, 50.0])
        for v in (2.0, 30.0):
            theirs.observe(v)
        registry.merge(other.snapshot())
        h = registry.histogram("h")
        assert h.bounds == (5.0, 10.0)
        # <=5: 0.5,3.0,2.0 | <=10: 7.0 | overflow: 20.0,30.0
        assert h.bucket_counts == [3, 1, 2]
        assert sum(h.bucket_counts) == h.count == 6

    def test_disjoint_bounds_widen_to_summary(self, registry):
        registry.histogram("h", bounds=[1.0]).observe(0.5)
        other = MetricsRegistry()
        other.histogram("h", bounds=[99.0]).observe(5.0)
        registry.merge(other.snapshot())
        h = registry.histogram("h")
        assert h.bounds == ()
        assert h.bucket_counts == []
        # The streaming summary survives the widening intact.
        assert (h.count, h.total, h.min, h.max) == (2, 5.5, 0.5, 5.0)

    def test_merge_never_raises_on_any_bounds_combination(self, registry):
        """Totality: merging any pairing of bucketed/unbucketed histograms
        must succeed and preserve count/sum."""
        combos = [(), (1.0,), (1.0, 2.0), (3.0,)]
        for i, mine in enumerate(combos):
            for j, theirs in enumerate(combos):
                name = f"h{i}_{j}"
                registry.histogram(name, bounds=mine or None).observe(1.0)
                other = MetricsRegistry()
                other.histogram(name, bounds=theirs or None).observe(2.0)
                registry.merge(other.snapshot())
                h = registry.histogram(name)
                assert (h.count, h.total) == (2, 3.0)
                if h.bounds:
                    assert sum(h.bucket_counts) == h.count


class TestDisabled:
    def test_null_registry_hands_out_shared_noop(self):
        reg = NullMetricsRegistry()
        c = reg.counter("a")
        assert c is reg.counter("b") is reg.gauge("g") is reg.histogram("h")
        c.inc(100)
        c.observe(5.0)
        c.set(3.0)
        assert c.value == 0 and c.count == 0
        assert reg.snapshot() == {}
        assert reg.enabled is False

    def test_null_merge_is_inert(self):
        reg = NullMetricsRegistry()
        reg.merge({"c": {"type": "counter", "value": 5}})
        assert reg.snapshot() == {}

    def test_enable_metrics_installs_and_flags_workers(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        previous = get_metrics()
        try:
            reg = enable_metrics()
            import os

            assert get_metrics() is reg
            assert reg.enabled
            assert os.environ.get(METRICS_ENV) == "1"
        finally:
            set_metrics(previous)
            monkeypatch.delenv(METRICS_ENV, raising=False)

    def test_default_is_null(self):
        assert isinstance(NULL_METRICS, NullMetricsRegistry)
