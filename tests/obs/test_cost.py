"""Cost ledger: attribution accounts, totals/top queries, capacity
eviction, thread safety, stats charging, and the null-ledger default."""

import threading

import pytest

from repro.obs import (
    COST_FIELDS,
    NULL_COST_LEDGER,
    CostKey,
    CostLedger,
    NullCostLedger,
    enable_cost_ledger,
    get_cost_ledger,
    set_cost_ledger,
)


def _key(trace="t1", **kwargs):
    return CostKey(trace_id=trace, **kwargs)


class TestCharging:
    def test_charge_accumulates_per_key(self):
        ledger = CostLedger()
        ledger.charge(_key(), conflicts=3, wall_seconds=0.5)
        ledger.charge(_key(), conflicts=2)
        ledger.charge(_key(bundle="b"), conflicts=10)
        (first, second) = ledger.entries()
        assert first["conflicts"] == 5 and first["wall_seconds"] == 0.5
        assert second["conflicts"] == 10 and second["bundle"] == "b"
        assert len(ledger) == 2

    def test_unknown_field_raises(self):
        ledger = CostLedger()
        with pytest.raises(KeyError):
            ledger.charge(_key(), confilcts=1)  # typo must not vanish

    def test_entries_carry_every_meter_and_the_key(self):
        ledger = CostLedger()
        ledger.charge(
            _key(device="phone", bundle="a,b", signature="collusion"),
            pdp_cache_hits=4,
        )
        (entry,) = ledger.entries()
        for field in COST_FIELDS:
            assert field in entry
        assert entry["trace_id"] == "t1"
        assert entry["device"] == "phone"
        assert entry["signature"] == "collusion"
        assert entry["pdp_cache_hits"] == 4

    def test_charge_stats_maps_solver_counters(self):
        ledger = CostLedger()
        ledger.charge_stats(
            _key(),
            {
                "conflicts": 7,
                "decisions": 20,
                "propagations": 100,
                "num_clauses": 50,
                "translations_avoided": 3,
                "construction_seconds": 0.25,
                "solving_seconds": 0.75,
            },
        )
        (entry,) = ledger.entries()
        assert entry["conflicts"] == 7
        assert entry["clauses_added"] == 50
        assert entry["translations_avoided"] == 3
        assert entry["wall_seconds"] == pytest.approx(1.0)


class TestQueries:
    def test_totals_filtered_by_trace_and_device(self):
        ledger = CostLedger()
        ledger.charge(_key("t1", device="a"), conflicts=1)
        ledger.charge(_key("t1", device="b"), conflicts=2)
        ledger.charge(_key("t2", device="a"), conflicts=4)
        assert ledger.totals()["conflicts"] == 7
        assert ledger.totals(trace_id="t1")["conflicts"] == 3
        assert ledger.totals(device="a")["conflicts"] == 5
        assert ledger.totals(trace_id="t2", device="a")["conflicts"] == 4
        assert ledger.totals(trace_id="absent")["conflicts"] == 0

    def test_top_ranks_by_requested_meter(self):
        ledger = CostLedger()
        ledger.charge(_key(bundle="cheap"), conflicts=1, wall_seconds=9.0)
        ledger.charge(_key(bundle="hot"), conflicts=100, wall_seconds=0.1)
        top = ledger.top(1, by="conflicts")
        assert [e["bundle"] for e in top] == ["hot"]
        assert [e["bundle"] for e in ledger.top(1, by="wall_seconds")] == [
            "cheap"
        ]
        with pytest.raises(KeyError):
            ledger.top(1, by="nonsense")

    def test_merge_round_trips_exported_entries(self):
        source = CostLedger()
        source.charge(_key(bundle="x"), conflicts=5, cache_misses=1)
        source.charge(_key("t2"), decisions=8)
        restored = CostLedger()
        restored.merge(source.entries())
        assert restored.entries() == source.entries()


class TestCapacity:
    def test_fifo_eviction_keeps_resident_set_flat(self):
        ledger = CostLedger(capacity=3)
        for i in range(5):
            ledger.charge(_key(f"t{i}"), conflicts=i)
        assert len(ledger) == 3
        assert ledger.evictions == 2
        traces = [e["trace_id"] for e in ledger.entries()]
        assert traces == ["t2", "t3", "t4"]  # oldest accounts went first

    def test_reset_clears_accounts_and_eviction_count(self):
        ledger = CostLedger(capacity=1)
        ledger.charge(_key("a"), conflicts=1)
        ledger.charge(_key("b"), conflicts=1)
        assert ledger.evictions == 1
        ledger.reset()
        assert len(ledger) == 0 and ledger.evictions == 0

    def test_concurrent_charges_lose_nothing(self):
        ledger = CostLedger()
        per_thread = 500

        def work(i):
            for _ in range(per_thread):
                ledger.charge(_key(f"t{i % 2}"), conflicts=1)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert ledger.totals()["conflicts"] == 4 * per_thread


class TestGlobalInstall:
    def test_null_ledger_is_default_and_inert(self):
        assert isinstance(NULL_COST_LEDGER, NullCostLedger)
        assert NULL_COST_LEDGER.enabled is False
        NULL_COST_LEDGER.charge(_key(), conflicts=99)
        NULL_COST_LEDGER.charge_stats(_key(), {"conflicts": 99})
        NULL_COST_LEDGER.merge([{"trace_id": "x", "conflicts": 1}])
        assert NULL_COST_LEDGER.entries() == []
        assert NULL_COST_LEDGER.totals()["conflicts"] == 0

    def test_enable_is_idempotent_and_set_restores(self):
        previous = get_cost_ledger()
        try:
            set_cost_ledger(NULL_COST_LEDGER)
            live = enable_cost_ledger()
            assert live.enabled
            assert enable_cost_ledger() is live  # second call: same ledger
            assert get_cost_ledger() is live
        finally:
            set_cost_ledger(previous)
        assert get_cost_ledger() is previous
