"""Solver progress telemetry: ring buffer semantics (including concurrent
publish/read), solver publication, heartbeat transport over the trace
file, the --watch monitor, and the zero-cost / byte-identity guarantee
when telemetry is disabled."""

import json
import logging
import threading

import pytest

from repro.obs import (
    NULL_PROGRESS,
    PROGRESS_ENV,
    HeartbeatMonitor,
    JsonlTracer,
    ProgressBus,
    ProgressRing,
    ProgressSnapshot,
    enable_progress,
    get_progress,
    set_progress,
    set_tracer,
)
from repro.sat.solver import BudgetExhausted, Solver


def _snap(i, pid=1):
    return ProgressSnapshot(
        ts=float(i),
        pid=pid,
        solve_id=1,
        conflicts=i,
        decisions=2 * i,
        propagations=3 * i,
        restarts=0,
        learned=i,
        trail=5,
        conflicts_per_sec=100.0,
    )


@pytest.fixture
def bus():
    """Install a live in-process bus (no trace events); restore after."""
    b = ProgressBus(interval=1, emit_events=False)
    previous = set_progress(b)
    yield b
    set_progress(previous)


def _pigeonhole(n):
    """PHP(n+1, n): n+1 pigeons in n holes -- UNSAT with real conflicts."""
    clauses = []
    var = lambda p, h: p * n + h + 1  # noqa: E731
    for p in range(n + 1):
        clauses.append([var(p, h) for h in range(n)])
    for h in range(n):
        for p1 in range(n + 1):
            for p2 in range(p1 + 1, n + 1):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestRing:
    def test_latest_and_seq(self):
        ring = ProgressRing(capacity=4)
        assert ring.latest() is None
        for i in range(3):
            ring.publish(_snap(i))
        assert ring.seq == 3
        assert ring.latest().conflicts == 2

    def test_read_since_in_order_no_drops(self):
        ring = ProgressRing(capacity=8)
        for i in range(5):
            ring.publish(_snap(i))
        cursor, dropped, items = ring.read_since(0)
        assert cursor == 5
        assert dropped == 0
        assert [s.conflicts for s in items] == [0, 1, 2, 3, 4]
        cursor, dropped, items = ring.read_since(cursor)
        assert (cursor, dropped, items) == (5, 0, [])

    def test_wraparound_reports_drops(self):
        ring = ProgressRing(capacity=4)
        for i in range(10):
            ring.publish(_snap(i))
        cursor, dropped, items = ring.read_since(0)
        assert cursor == 10
        assert dropped == 6  # only the last `capacity` survive
        assert [s.conflicts for s in items] == [6, 7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ProgressRing(capacity=0)

    def test_concurrent_publish_and_read(self):
        """One writer, one reader, no locks: the reader must only ever see
        monotonically increasing conflict counts and account for every
        snapshot as either delivered or dropped."""
        ring = ProgressRing(capacity=16)
        total = 5000
        seen = []
        dropped_total = 0

        def writer():
            for i in range(total):
                ring.publish(_snap(i))

        def reader():
            nonlocal dropped_total
            cursor = 0
            while cursor < total:
                cursor, dropped, items = ring.read_since(cursor)
                dropped_total += dropped
                seen.extend(s.conflicts for s in items)

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start(), r.start()
        w.join(), r.join()
        assert sorted(seen) == seen  # strictly in publication order
        assert len(seen) + dropped_total == total


class TestSnapshotRoundTrip:
    def test_dict_round_trip(self):
        snap = _snap(7)
        data = snap.to_dict()
        assert data["event"] == "progress"
        assert ProgressSnapshot.from_dict(data) == snap

    def test_budget_remaining_survives(self):
        snap = _snap(3)
        snap.budget_remaining = 42
        assert ProgressSnapshot.from_dict(snap.to_dict()).budget_remaining == 42


class TestSolverPublishes:
    def test_conflicty_solve_emits_snapshots(self, bus):
        solver = Solver()
        for clause in _pigeonhole(5):
            solver.add_clause(clause)
        result = solver.solve()
        assert not result.satisfiable
        assert bus.ring.seq > 1  # periodic samples plus the closing one
        last = bus.ring.latest()
        assert last.conflicts > 0
        assert last.decisions > 0
        assert last.solve_id == 1
        assert last.budget_remaining is None

    def test_budget_remaining_counts_down(self, bus):
        solver = Solver()
        for clause in _pigeonhole(6):
            solver.add_clause(clause)
        with pytest.raises(BudgetExhausted):
            solver.solve(conflict_budget=10)
        last = bus.ring.latest()
        assert last.budget_remaining == 0  # closing snapshot at the miss

    def test_easy_solve_heartbeats_once(self, bus):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve().satisfiable
        assert bus.ring.seq == 1  # no conflicts, still one closing snapshot

    def test_null_bus_publishes_nothing(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        assert get_progress() is NULL_PROGRESS or not get_progress().enabled
        solver = Solver()
        for clause in _pigeonhole(4):
            solver.add_clause(clause)
        assert not solver.solve().satisfiable  # must not raise or publish


class TestHeartbeatTransport:
    def test_snapshots_land_in_trace_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = JsonlTracer(str(path))
        previous_tracer = set_tracer(tracer)
        previous_bus = set_progress(ProgressBus(interval=1))
        try:
            solver = Solver()
            for clause in _pigeonhole(5):
                solver.add_clause(clause)
            solver.solve()
        finally:
            set_progress(previous_bus)
            set_tracer(previous_tracer)
            tracer.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        beats = [d for d in lines if d.get("event") == "progress"]
        assert beats
        assert all(d["pid"] > 0 for d in beats)
        assert beats[-1]["conflicts"] >= beats[0]["conflicts"]

    def test_emit_event_requires_event_key(self, tmp_path):
        tracer = JsonlTracer(str(tmp_path / "t.jsonl"))
        try:
            with pytest.raises(ValueError):
                tracer.emit_event({"no": "kind"})
        finally:
            tracer.close()

    def test_enable_progress_sets_env_for_workers(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        previous = get_progress()
        try:
            bus = enable_progress(interval=64)
            import os

            assert os.environ[PROGRESS_ENV] == "64"
            assert get_progress() is bus
            assert bus.interval == 64
        finally:
            set_progress(previous)
            monkeypatch.delenv(PROGRESS_ENV, raising=False)


class TestHeartbeatMonitor:
    def _write_beat(self, path, i, pid=101):
        with open(path, "a") as handle:
            handle.write(json.dumps(_snap(i, pid=pid).to_dict()) + "\n")

    def test_poll_picks_up_appended_beats(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        monitor = HeartbeatMonitor(str(path), stall_after=100.0)
        assert monitor.poll(now=0.0) == []
        self._write_beat(path, 1)
        self._write_beat(path, 2, pid=202)
        fresh = monitor.poll(now=1.0)
        assert [s.pid for s in fresh] == [101, 202]
        assert monitor.pids() == [101, 202]
        assert monitor.latest(101).conflicts == 1
        self._write_beat(path, 9)
        assert [s.conflicts for s in monitor.poll(now=2.0)] == [9]
        assert monitor.latest(101).conflicts == 9

    def test_partial_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "t.jsonl"
        full = json.dumps(_snap(1).to_dict()) + "\n"
        path.write_text(full[:20])  # a write landed mid-line
        monitor = HeartbeatMonitor(str(path))
        assert monitor.poll(now=0.0) == []
        with open(path, "a") as handle:
            handle.write(full[20:])
        assert [s.conflicts for s in monitor.poll(now=1.0)] == [1]

    def test_stall_flagged_once(self, tmp_path, caplog):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        logger = logging.getLogger("repro.test-watch")
        monitor = HeartbeatMonitor(str(path), stall_after=5.0, logger=logger)
        self._write_beat(path, 1)
        with caplog.at_level(logging.INFO, logger=logger.name):
            monitor.poll(now=0.0)
            monitor.poll(now=10.0)  # silent past the threshold
            monitor.poll(now=20.0)  # still silent: no second warning
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        assert len(warnings) == 1
        assert monitor.stalled_pids(now=10.0) == [101]
        # A fresh heartbeat clears the stall latch.
        self._write_beat(path, 2)
        with caplog.at_level(logging.INFO, logger=logger.name):
            monitor.poll(now=21.0)
            monitor.poll(now=40.0)
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        assert len(warnings) == 2

    def test_stall_recover_stall_warns_per_episode(self, tmp_path, caplog):
        """The warning re-arms after recovery: stall -> recover -> stall
        produces exactly two warnings, one resumed notice per recovery,
        and a per-pid episode count of two."""
        path = tmp_path / "t.jsonl"
        path.write_text("")
        logger = logging.getLogger("repro.test-watch-episodes")
        monitor = HeartbeatMonitor(str(path), stall_after=5.0, logger=logger)
        with caplog.at_level(logging.INFO, logger=logger.name):
            self._write_beat(path, 1)
            monitor.poll(now=0.0)
            assert monitor.stall_count(101) == 0
            monitor.poll(now=10.0)  # first stall episode
            assert monitor.stall_count(101) == 1
            self._write_beat(path, 2)
            monitor.poll(now=11.0)  # recovery
            monitor.poll(now=12.0)  # healthy: no spurious logs
            monitor.poll(now=30.0)  # second stall episode
            assert monitor.stall_count(101) == 2
            self._write_beat(path, 3)
            monitor.poll(now=31.0)  # second recovery
        warnings = [r for r in caplog.records if r.levelno == logging.WARNING]
        resumed = [
            r
            for r in caplog.records
            if r.levelno == logging.INFO and "resumed" in r.getMessage()
        ]
        assert len(warnings) == 2
        assert all("101" in r.getMessage() for r in warnings)
        assert len(resumed) == 2
        # Recovered and beating: not currently stalled.
        assert monitor.stalled_pids(now=32.0) == []

    def test_missing_file_is_not_an_error(self, tmp_path):
        monitor = HeartbeatMonitor(str(tmp_path / "absent.jsonl"))
        assert monitor.poll() == []

    def test_start_stop_background_thread(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        monitor = HeartbeatMonitor(
            str(path), poll_interval=0.01, stall_after=100.0
        )
        monitor.start()
        try:
            self._write_beat(path, 1)
            for _ in range(200):
                if monitor.pids():
                    break
                import time

                time.sleep(0.005)
        finally:
            monitor.stop()
        assert monitor.pids() == [101]


class TestZeroCostIdentity:
    def test_default_bus_is_null(self, monkeypatch):
        monkeypatch.delenv(PROGRESS_ENV, raising=False)
        import importlib

        from repro.obs import progress as progress_module

        # Reimporting with the env unset must land back on the null bus.
        importlib.reload(progress_module)
        try:
            assert not progress_module.get_progress().enabled
            assert progress_module.get_progress().interval == 0
        finally:
            importlib.reload(progress_module)

    def test_findings_identical_with_telemetry_on_and_off(self, tmp_path):
        """The observability acceptance bar: enabling every telemetry layer
        must not change analysis output by a single byte."""
        import json as json_module

        from repro.benchsuite.running_example import build_app1, build_app2
        from repro.obs import enable_metrics, set_metrics, NULL_METRICS
        from repro.obs import enable_tracing, NULL_TRACER
        from repro.pipeline import AnalysisPipeline, NullCache

        apks = [build_app1(), build_app2()]

        def run():
            result = AnalysisPipeline(
                jobs=1, cache=NullCache(), scenarios_per_signature=4
            ).run([apks])
            return json_module.dumps(result.findings_dict(), sort_keys=True)

        plain = run()

        tracer = enable_tracing(str(tmp_path / "t.jsonl"))
        enable_metrics()
        bus = enable_progress(interval=1)
        try:
            telemetered = run()
        finally:
            set_tracer(NULL_TRACER)
            set_metrics(NULL_METRICS)
            set_progress(NULL_PROGRESS)
            tracer.close()
            import os

            os.environ.pop("REPRO_TRACE", None)
            os.environ.pop("REPRO_METRICS", None)
            os.environ.pop(PROGRESS_ENV, None)

        assert telemetered == plain
        assert bus.ring.seq > 0  # telemetry actually ran
