"""Tracing spans: nesting, round-trip serialization, concurrency, and the
zero-cost-when-disabled guarantee."""

import json
import os
import threading
import time

import pytest

from repro.obs import (
    NULL_TRACER,
    TRACE_ENV,
    InMemoryTracer,
    JsonlTracer,
    NullTracer,
    SpanRecord,
    TraceContext,
    adopt_trace_context,
    current_trace_context,
    current_trace_id,
    enable_tracing,
    get_tracer,
    new_trace_id,
    set_tracer,
)
from repro.obs import trace
from repro.obs.trace import read_trace, write_trace


@pytest.fixture
def tracer():
    """Install an in-memory tracer; restore the previous one afterwards."""
    t = InMemoryTracer()
    previous = set_tracer(t)
    yield t
    set_tracer(previous)


class TestNesting:
    def test_parent_child(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_children_close_before_parents(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [r.name for r in tracer.records] == ["b", "c", "a"]

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("root"):
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        root = next(r for r in tracer.records if r.name == "root")
        kids = [r for r in tracer.records if r.name in ("x", "y")]
        assert all(k.parent_id == root.span_id for k in kids)

    def test_attributes_at_open_and_via_set(self, tracer):
        with tracer.span("s", static="yes") as span:
            span.set(discovered=3)
        (record,) = tracer.records
        assert record.attrs == {"static": "yes", "discovered": 3}

    def test_duration_measured(self, tracer):
        with tracer.span("timed"):
            time.sleep(0.01)
        (record,) = tracer.records
        assert record.seconds >= 0.005
        assert record.pid == os.getpid()

    def test_span_ids_unique(self, tracer):
        for _ in range(50):
            with tracer.span("s"):
                pass
        ids = [r.span_id for r in tracer.records]
        assert len(set(ids)) == len(ids)


class TestThreadSafety:
    def test_nesting_is_per_thread(self, tracer):
        """Concurrent threads never adopt each other's spans as parents."""
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait()
            with tracer.span(f"outer-{i}"):
                with tracer.span(f"inner-{i}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {r.name: r for r in tracer.records}
        assert len(tracer.records) == 8
        for i in range(4):
            assert (
                by_name[f"inner-{i}"].parent_id
                == by_name[f"outer-{i}"].span_id
            )


class TestRoundTrip:
    def test_record_dict_round_trip(self):
        record = SpanRecord(
            name="n", span_id="1-1", parent_id=None, start=1.5,
            seconds=0.25, attrs={"k": "v"}, pid=42,
        )
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_write_then_read(self, tmp_path, tracer):
        with tracer.span("outer", apps=2):
            with tracer.span("inner"):
                pass
        path = tmp_path / "t.jsonl"
        write_trace(str(path), tracer.records)
        assert read_trace(str(path)) == tracer.records

    def test_jsonl_tracer_emits_parseable_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = JsonlTracer(str(path))
        previous = set_tracer(t)
        try:
            with t.span("a"):
                with t.span("b"):
                    pass
        finally:
            set_tracer(previous)
            t.close()
        lines = path.read_text().splitlines()
        # Two spans, each as a begin event plus a completion line.
        assert len(lines) == 4
        parsed = [json.loads(line) for line in lines]
        begins = [p for p in parsed if p.get("event") == "span_begin"]
        completions = [p for p in parsed if "event" not in p]
        assert {p["name"] for p in begins} == {"a", "b"}
        assert {p["name"] for p in completions} == {"a", "b"}
        assert {p["span_id"] for p in begins} == {
            p["span_id"] for p in completions
        }
        records = read_trace(str(path))
        assert len(records) == 2
        by_name = {r.name: r for r in records}
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert not any(r.open for r in records)

    def test_read_trace_recovers_open_span_for_killed_worker(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = JsonlTracer(str(path))
        try:
            with t.span("survivor"):
                pass
            # Simulate a worker killed mid-span: begin event written, the
            # process dies before __exit__ ever runs.
            doomed = t.span("doomed", task=7)
            doomed.__enter__()
            # Undo the contextvar mutations without emitting a completion
            # (a real kill takes the whole process, contextvars included).
            trace._current_span_id.reset(doomed._token)
            if doomed._trace_token is not None:
                trace._current_trace_id.reset(doomed._trace_token)
        finally:
            t.close()
        records = read_trace(str(path))
        by_name = {r.name: r for r in records}
        assert not by_name["survivor"].open
        assert by_name["doomed"].open
        assert by_name["doomed"].seconds == 0.0
        # Open spans come from begin events, which carry start + pid.
        assert by_name["doomed"].start > 0
        assert by_name["doomed"].pid == os.getpid()

    def test_begin_events_can_be_disabled(self, tmp_path):
        path = tmp_path / "t.jsonl"
        t = JsonlTracer(str(path), begin_events=False)
        try:
            with t.span("a"):
                pass
        finally:
            t.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert "event" not in json.loads(lines[0])

    def test_enable_tracing_sets_env_for_workers(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        path = tmp_path / "t.jsonl"
        previous = get_tracer()
        t = enable_tracing(str(path))
        try:
            assert os.environ[TRACE_ENV] == str(path)
            assert get_tracer() is t
        finally:
            set_tracer(previous)
            t.close()
            monkeypatch.delenv(TRACE_ENV, raising=False)


class TestTraceContext:
    def test_root_span_mints_trace_id_children_inherit(self, tracer):
        assert current_trace_id() is None
        with tracer.span("root"):
            minted = current_trace_id()
            assert minted
            with tracer.span("child"):
                assert current_trace_id() == minted
        # The root resets the trace id on exit: the next root starts fresh.
        assert current_trace_id() is None
        by_name = {r.name: r for r in tracer.records}
        assert by_name["root"].trace_id == minted
        assert by_name["child"].trace_id == minted

    def test_consecutive_roots_get_distinct_trace_ids(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        ids = {r.trace_id for r in tracer.records}
        assert len(ids) == 2 and None not in ids

    def test_adopted_context_parents_and_propagates(self, tracer):
        """The cross-process handshake: a worker adopting the
        orchestrator's context attaches its spans under the dispatch span
        and stamps them with the orchestrator's trace id."""
        ctx = TraceContext(trace_id="feedfacefeedface", span_id="999-1")
        with adopt_trace_context(ctx):
            assert current_trace_id() == "feedfacefeedface"
            with tracer.span("worker.task"):
                pass
        (record,) = tracer.records
        assert record.parent_id == "999-1"
        assert record.trace_id == "feedfacefeedface"
        # Adoption is scoped: nothing leaks once the context manager exits.
        assert current_trace_id() is None

    def test_adoption_restores_previous_context(self, tracer):
        """Pool workers are reused across tasks: each adoption must undo
        itself completely, even when contexts nest."""
        outer = TraceContext(trace_id="aaaa", span_id="1-1")
        inner = TraceContext(trace_id="bbbb", span_id="2-2")
        with adopt_trace_context(outer):
            with adopt_trace_context(inner):
                assert current_trace_id() == "bbbb"
            assert current_trace_id() == "aaaa"
            assert current_trace_context().span_id == "1-1"
        assert current_trace_context() is None

    def test_adopting_none_is_a_noop(self, tracer):
        with adopt_trace_context(None):
            with tracer.span("untraced-context"):
                pass
        (record,) = tracer.records
        assert record.parent_id is None
        assert record.trace_id  # still mints its own as a root

    def test_current_context_prefers_local_span(self, tracer):
        ctx = TraceContext(trace_id="cccc", span_id="3-3")
        with adopt_trace_context(ctx):
            with tracer.span("local") as span:
                captured = current_trace_context()
                assert captured.trace_id == "cccc"
                assert captured.span_id == span.span_id
            # No local span open: falls back to the remote parent.
            assert current_trace_context().span_id == "3-3"

    def test_context_dict_round_trip(self):
        ctx = TraceContext(trace_id=new_trace_id(), span_id="7-42")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        fresh = TraceContext.new()
        assert fresh.trace_id and fresh.span_id is None

    def test_record_round_trip_keeps_trace_id(self):
        record = SpanRecord(
            name="n", span_id="1-1", parent_id=None, start=1.0,
            seconds=0.5, attrs={}, pid=7, trace_id="abcd",
        )
        assert SpanRecord.from_dict(record.to_dict()) == record
        # Pre-trace-context records load with trace_id None.
        data = record.to_dict()
        del data["trace_id"]
        assert SpanRecord.from_dict(data).trace_id is None


class TestDisabled:
    def test_null_tracer_returns_shared_singleton(self):
        t = NullTracer()
        s1 = t.span("anything", big_attr="x" * 100)
        s2 = t.span("other")
        assert s1 is s2  # no per-span allocation at all

    def test_null_span_protocol_is_inert(self):
        t = NullTracer()
        with t.span("s") as span:
            span.set(k=1)  # swallowed, not stored
        assert not hasattr(span, "attrs")
        assert t.enabled is False

    def test_default_tracer_is_null(self):
        # The module-level default (absent REPRO_TRACE) must be the no-op.
        if not os.environ.get(TRACE_ENV):
            assert isinstance(NULL_TRACER, NullTracer)

    def test_noop_overhead_guard(self):
        """Disabled tracing must stay within noise of a bare loop.

        Generous absolute bound: 20k no-op spans in well under a second on
        any machine -- a regression that allocates or serializes per span
        blows straight through it.
        """
        t = NullTracer()
        start = time.perf_counter()
        for _ in range(20_000):
            with t.span("hot", a=1):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
