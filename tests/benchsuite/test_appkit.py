"""Tests for the benchmark app-builder kit."""

import pytest

from repro.android.components import ComponentKind
from repro.android.resources import Resource
from repro.benchsuite.appkit import (
    component_decl,
    leaking_receiver_class,
    make_apk,
    result_consuming_class,
    result_returning_class,
    source_sender_class,
)
from repro.core.model import PathModel
from repro.statics import extract_app

A = ComponentKind.ACTIVITY
S = ComponentKind.SERVICE
R = ComponentKind.RECEIVER
P = ComponentKind.PROVIDER


class TestComponentDecl:
    def test_filter_attributes(self):
        decl = component_decl(
            "C", S, action="go", category="cat", data_scheme="content",
            data_type="text/plain",
        )
        [filt] = decl.intent_filters
        assert filt.actions == {"go"}
        assert filt.categories == {"cat"}
        assert filt.data_schemes == {"content"}
        assert filt.data_types == {"text/plain"}

    def test_no_action_no_filter(self):
        assert not component_decl("C", S).intent_filters

    def test_provider_authority(self):
        decl = component_decl("Prov", P, exported=True, authority="x.y")
        assert decl.authority == "x.y"


class TestSenderBuilder:
    def _extract(self, cls, kind=A, extra_decl=None):
        decls = [component_decl("Main", kind, exported=True)]
        if extra_decl is not None:
            decls.append(extra_decl)
        apk = make_apk("p", decls, [cls])
        return extract_app(apk)

    def test_implicit_sender(self):
        cls = source_sender_class("Main", A, "Context.startService", action="go")
        model = self._extract(cls)
        [intent] = model.intents
        assert intent.action == "go"
        assert not intent.explicit
        assert Resource.IMEI in intent.extras

    def test_explicit_sender(self):
        cls = source_sender_class("Main", A, "Context.startService", target="p/T")
        model = self._extract(cls)
        [intent] = model.intents
        assert intent.target == "p/T"

    def test_data_attributes(self):
        cls = source_sender_class(
            "Main", A, "Context.startService",
            action="go", data_scheme="content", data_type="text/plain",
            category="c",
        )
        model = self._extract(cls)
        [intent] = model.intents
        assert intent.data_scheme == "content"
        assert intent.data_type == "text/plain"
        assert intent.categories == {"c"}

    def test_helper_routing(self):
        cls = source_sender_class(
            "Main", A, "Context.startService", action="go", via_helper=True
        )
        model = self._extract(cls)
        assert [i.action for i in model.intents] == ["go"]

    def test_custom_source(self):
        cls = source_sender_class(
            "Main", A, "Context.startService", action="go",
            source_api="LocationManager.getLastKnownLocation",
        )
        model = self._extract(cls)
        assert Resource.LOCATION in model.intents[0].extras


class TestReceiverBuilder:
    @pytest.mark.parametrize(
        "sink_api,sink_resource",
        [
            ("SmsManager.sendTextMessage", Resource.SMS),
            ("Log.d", Resource.LOG),
            ("URL.openConnection", Resource.NETWORK),
            ("ExternalStorage.writeFile", Resource.SDCARD),
        ],
    )
    def test_sink_variants(self, sink_api, sink_resource):
        cls = leaking_receiver_class("Recv", S, sink_api=sink_api)
        apk = make_apk("p", [component_decl("Recv", S, action="x")], [cls])
        model = extract_app(apk)
        assert PathModel(Resource.ICC, sink_resource) in model.component(
            "p/Recv"
        ).paths

    def test_result_pair(self):
        caller = result_consuming_class("Caller", "p/Callee")
        callee = result_returning_class("Callee")
        apk = make_apk(
            "p",
            [
                component_decl("Caller", A, exported=True),
                component_decl("Callee", A),
            ],
            [caller, callee],
        )
        model = extract_app(apk)
        passive = [i for i in model.intents if i.passive]
        assert passive and passive[0].passive_targets == {"p/Caller"}
        assert PathModel(Resource.ICC, Resource.SMS) in model.component(
            "p/Caller"
        ).paths
