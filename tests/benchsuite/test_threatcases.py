"""The fixed threat-case suite: every positive detected, every decoy
silent, in both the SAT synthesis and the detector twin."""

import pytest

from repro.benchsuite.threatcases import (
    all_threat_cases,
    detected_apps,
)
from repro.core.attack_generation import SCALED_SIGNATURES
from repro.core.detector import SeparDetector
from repro.core.policy import derive_policies
from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.statics import extract_bundle

CASES = all_threat_cases()


@pytest.fixture(scope="module")
def analyzed():
    engine = AnalysisAndSynthesisEngine(scenarios_per_signature=4)
    results = {}
    for case in CASES:
        bundle = extract_bundle(case.apks, handle_dynamic_receivers=True)
        results[case.name] = (bundle, engine.run(bundle))
    return results


def test_suite_covers_all_scaled_signatures():
    covered = {case.signature for case in CASES}
    assert covered == set(SCALED_SIGNATURES)
    # Every signature ships at least one positive and one decoy.
    for name in SCALED_SIGNATURES:
        flavors = {case.is_decoy for case in CASES if case.signature == name}
        assert flavors == {True, False}, name


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_sat_synthesis_matches_ground_truth(case, analyzed):
    _, result = analyzed[case.name]
    got = detected_apps(result.scenarios, case.signature)
    assert got == set(case.expected_apps), case.notes


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_scenarios_stay_within_planted_components(case, analyzed):
    _, result = analyzed[case.name]
    for scenario in result.scenarios:
        if scenario.vulnerability != case.signature:
            continue
        for atom in scenario.roles.values():
            if not isinstance(atom, str) or "/" not in atom:
                continue  # postulated attacker atoms name no component
            # Dynamic-filter roles qualify the component with "#fN".
            assert atom.split("#", 1)[0] in case.components, atom


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.name)
def test_detector_twin_matches_ground_truth(case, analyzed):
    bundle, _ = analyzed[case.name]
    report = SeparDetector().detect(bundle)
    assert report.apps(case.signature) == set(case.expected_apps), case.notes


@pytest.mark.parametrize(
    "case", [c for c in CASES if not c.is_decoy], ids=lambda c: c.name
)
def test_positive_cases_derive_enforceable_policies(case, analyzed):
    bundle, result = analyzed[case.name]
    policies = derive_policies(result.scenarios, bundle)
    assert any(p.vulnerability == case.signature for p in policies), (
        case.name
    )
