"""The benchmark-regression harness: snapshot schema, write/load round
trip, direction-aware comparison (the injected-slowdown detection the CI
gate relies on), and the CLI exit codes."""

import copy
import json

import pytest

from repro.benchsuite.bench import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    bench_filename,
    compare_bench,
    environment_fingerprint,
    load_bench,
    peak_rss_bytes,
    run_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def snapshot():
    """One real (tiny) bench run shared by the schema tests."""
    config = BenchConfig(
        label="unit",
        scale=0.0025,
        bundle_size=4,
        scenarios=2,
        quick=True,
    )
    return run_bench(config)


def _baseline():
    """A hand-built snapshot with values comfortably above noise floors."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": "base",
        "created": 0.0,
        "config": {},
        "environment": {},
        "peak_rss_bytes": 100 * 1024 * 1024,
        "workloads": {
            "pipeline_cold": {
                "num_apps": 20.0,
                "wall_seconds": 10.0,
                "solving_seconds": 2.0,
                "conflicts": 5000.0,
                "cache_hit_rate": 0.0,
            },
            "pipeline_warm": {
                "num_apps": 20.0,
                "wall_seconds": 1.0,
                "cache_hit_rate": 1.0,
            },
            "accuracy": {
                "cases": 33.0,
                "precision": 1.0,
                "recall": 0.95,
                "f_measure": 0.97,
                "total_seconds": 3.0,
            },
        },
    }


class TestSnapshot:
    def test_schema_fields(self, snapshot):
        assert snapshot["schema_version"] == BENCH_SCHEMA_VERSION
        assert snapshot["label"] == "unit"
        assert snapshot["config"]["quick"] is True
        env = snapshot["environment"]
        assert env["python"] and env["platform"]
        assert snapshot["peak_rss_bytes"] is None or snapshot["peak_rss_bytes"] > 0
        assert set(snapshot["workloads"]) == {
            "extraction",
            "pipeline_cold",
            "pipeline_warm",
            "accuracy",
            "accuracy_scaled",
            "synthesis_modes",
            "enforcement",
            "service",
        }

    def test_workload_metrics(self, snapshot):
        extraction = snapshot["workloads"]["extraction"]
        assert extraction["apps"] >= 1
        assert extraction["total_seconds"] > 0
        assert extraction["p95_seconds"] >= extraction["mean_seconds"] * 0.5
        cold = snapshot["workloads"]["pipeline_cold"]
        warm = snapshot["workloads"]["pipeline_warm"]
        assert cold["cache_hit_rate"] == 0.0
        assert warm["cache_hit_rate"] == 1.0
        assert cold["solver_calls"] > 0
        accuracy = snapshot["workloads"]["accuracy"]
        assert 0.0 <= accuracy["precision"] <= 1.0
        assert accuracy["cases"] > 0
        modes = snapshot["workloads"]["synthesis_modes"]
        assert modes["bundles"] >= 1
        assert modes["per_signature_seconds"] > 0
        assert modes["shared_seconds"] > 0
        assert modes["shared_speedup"] > 0
        enforcement = snapshot["workloads"]["enforcement"]
        assert enforcement["events"] > 0
        assert enforcement["linear_events_per_sec"] > 0
        assert enforcement["compiled_events_per_sec"] > 0
        assert 0.0 <= enforcement["cache_hit_rate"] <= 1.0
        assert enforcement["compiled_p99_us"] >= enforcement["compiled_p50_us"]
        service = snapshot["workloads"]["service"]
        assert service["queries"] > 0 and service["events"] > 0
        assert service["warm_seconds"] > 0 and service["cold_seconds"] > 0
        assert 0.0 <= service["warm_hit_rate"] <= 1.0
        assert service["socket_requests"] > 0
        assert service["request_p99_us"] >= service["request_p50_us"]
        # The workload itself raises on warm/cold divergence, so its
        # presence here implies the byte-identity assertion ran.
        assert service["warm_speedup"] > 0

    def test_write_load_round_trip(self, snapshot, tmp_path):
        path = write_bench(snapshot, str(tmp_path))
        assert path.endswith("BENCH_unit.json")
        assert load_bench(path) == json.loads(json.dumps(snapshot))

    def test_filename_sanitized(self):
        assert bench_filename("a/b c") == "BENCH_a_b_c.json"
        assert bench_filename("") == "BENCH_local.json"

    def test_environment_fingerprint_is_json_ready(self):
        json.dumps(environment_fingerprint())

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_bytes()
        assert rss is None or rss > 1024 * 1024


class TestCompare:
    def test_identical_snapshots_ok(self):
        base = _baseline()
        comparison = compare_bench(base, copy.deepcopy(base))
        assert comparison.ok()
        assert comparison.regressions == []
        assert comparison.mismatches == []

    def test_injected_slowdown_detected(self):
        """The core regression-gate property: a synthetic 2x slowdown on
        one metric must fail the comparison."""
        base = _baseline()
        slow = copy.deepcopy(base)
        slow["workloads"]["pipeline_cold"]["wall_seconds"] *= 2.0
        comparison = compare_bench(base, slow, threshold=0.25)
        assert not comparison.ok()
        assert [r.metric for r in comparison.regressions] == ["wall_seconds"]
        assert comparison.regressions[0].workload == "pipeline_cold"
        assert comparison.regressions[0].change == pytest.approx(1.0)

    def test_speedup_is_improvement_not_regression(self):
        base = _baseline()
        fast = copy.deepcopy(base)
        fast["workloads"]["pipeline_cold"]["wall_seconds"] /= 2.0
        comparison = compare_bench(base, fast)
        assert comparison.ok()
        assert [r.metric for r in comparison.improvements] == ["wall_seconds"]

    def test_higher_better_drop_is_regression(self):
        base = _baseline()
        worse = copy.deepcopy(base)
        worse["workloads"]["accuracy"]["recall"] = 0.5
        worse["workloads"]["pipeline_warm"]["cache_hit_rate"] = 0.2
        comparison = compare_bench(base, worse)
        assert not comparison.ok()
        assert {(r.workload, r.metric) for r in comparison.regressions} == {
            ("accuracy", "recall"),
            ("pipeline_warm", "cache_hit_rate"),
        }

    def test_noise_floor_swallows_tiny_seconds(self):
        base = _baseline()
        base["workloads"]["pipeline_warm"]["wall_seconds"] = 0.004
        jitter = copy.deepcopy(base)
        jitter["workloads"]["pipeline_warm"]["wall_seconds"] = 0.012  # 3x!
        comparison = compare_bench(base, jitter)
        assert comparison.ok()

    def test_rss_growth_is_a_regression(self):
        base = _baseline()
        fat = copy.deepcopy(base)
        fat["peak_rss_bytes"] = base["peak_rss_bytes"] * 2
        comparison = compare_bench(base, fat)
        assert [r.metric for r in comparison.regressions] == ["peak_rss_bytes"]

    def test_identity_mismatch_not_a_regression(self):
        base = _baseline()
        other = copy.deepcopy(base)
        other["workloads"]["pipeline_cold"]["num_apps"] = 40.0
        comparison = compare_bench(base, other)
        assert comparison.regressions == []
        assert len(comparison.mismatches) == 1
        assert comparison.ok(strict=False)
        assert not comparison.ok(strict=True)

    def test_missing_metric_flagged(self):
        base = _baseline()
        narrower = copy.deepcopy(base)
        del narrower["workloads"]["accuracy"]
        del narrower["workloads"]["pipeline_cold"]["conflicts"]
        comparison = compare_bench(base, narrower)
        assert len(comparison.missing) == 2
        assert comparison.ok(strict=False)
        assert not comparison.ok(strict=True)

    def test_per_metric_threshold_override(self):
        base = _baseline()
        slower = copy.deepcopy(base)
        slower["workloads"]["pipeline_cold"]["wall_seconds"] *= 1.5
        assert not compare_bench(base, slower, threshold=0.25).ok()
        assert compare_bench(
            base, slower, thresholds={"wall_seconds": 1.0}
        ).ok()

    def test_schema_version_mismatch_raises(self):
        base = _baseline()
        alien = copy.deepcopy(base)
        alien["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            compare_bench(base, alien)

    def test_suffix_threshold_covers_per_signature_metrics(self):
        """``recall=0.0`` must gate every ``<signature>_recall`` (the CI
        accuracy-smoke contract), exact keys winning over suffixes."""
        base = _baseline()
        base["workloads"]["accuracy_scaled"] = {
            "provider_leak_recall": 1.0,
            "recall": 1.0,
        }
        worse = copy.deepcopy(base)
        worse["workloads"]["accuracy_scaled"]["provider_leak_recall"] = 0.5
        assert compare_bench(base, worse, threshold=3.0).ok()
        gated = compare_bench(
            base, worse, threshold=3.0, thresholds={"recall": 0.0}
        )
        assert not gated.ok()
        assert any(
            delta.metric == "provider_leak_recall"
            for delta in gated.regressions
        )
        # An exact key beats the suffix fallback.
        lenient = compare_bench(
            base,
            worse,
            threshold=3.0,
            thresholds={"recall": 0.0, "provider_leak_recall": 1.0},
        )
        assert lenient.ok()

    def test_accuracy_suffix_metrics_are_direction_tagged(self):
        """A per-signature precision *drop* regresses; a rise improves."""
        base = _baseline()
        base["workloads"]["accuracy_scaled"] = {"app_collusion_precision": 0.5}
        better = copy.deepcopy(base)
        better["workloads"]["accuracy_scaled"]["app_collusion_precision"] = 1.0
        up = compare_bench(base, better, threshold=0.25)
        assert up.ok() and up.improvements
        down = compare_bench(better, base, threshold=0.25)
        assert not down.ok()


class TestCli:
    def _write(self, tmp_path, name, data):
        path = tmp_path / name
        path.write_text(json.dumps(data))
        return str(path)

    def test_compare_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        base = self._write(tmp_path, "old.json", _baseline())
        slow_data = _baseline()
        slow_data["workloads"]["pipeline_cold"]["wall_seconds"] *= 2
        slow = self._write(tmp_path, "new.json", slow_data)

        assert main(["bench", "--compare", base, base]) == 0
        assert main(["bench", "--compare", base, slow]) == 2
        assert main(["bench", "--compare", base, slow, "--warn-only"]) == 0
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "wall_seconds" in out

    def test_compare_strict_fails_on_missing(self, tmp_path):
        from repro.cli import main

        base = self._write(tmp_path, "old.json", _baseline())
        narrower_data = _baseline()
        del narrower_data["workloads"]["accuracy"]
        narrower = self._write(tmp_path, "new.json", narrower_data)

        assert main(["bench", "--compare", base, narrower]) == 0
        assert main(["bench", "--compare", base, narrower, "--strict"]) == 2

    def test_compare_unreadable_file_exits_1(self, tmp_path):
        from repro.cli import main

        base = self._write(tmp_path, "old.json", _baseline())
        assert main(["bench", "--compare", base, str(tmp_path / "nope")]) == 1
