"""The paper's Section VII.B findings, reproduced on the re-created apps.

Each finding class must be detected on its app, the synthesis must produce
a matching scenario, and the runtime must demonstrate the concrete abuse.
"""

import pytest

from repro.android.resources import Resource
from repro.benchsuite.market_findings import (
    build_barcoder,
    build_ermete_sms,
    build_hesabdar,
    build_owncloud,
    market_findings_bundle,
)
from repro.android import permissions as perms
from repro.core.detector import SeparDetector
from repro.core.separ import Separ
from repro.enforcement import AndroidRuntime, RuntimeIntent
from repro.statics import extract_bundle


@pytest.fixture(scope="module")
def report():
    return Separ().analyze_apks(market_findings_bundle())


class TestBarcoder:
    """Activity launch: unauthorized payments via the open InquiryActivity."""

    def test_detected(self):
        detection = SeparDetector().detect(extract_bundle([build_barcoder()]))
        assert "ir.barcoder/InquiryActivity" in detection.components(
            "activity_launch"
        )

    def test_scenario_synthesized(self, report):
        victims = {
            s.roles["victim"]
            for s in report.scenarios
            if s.vulnerability == "activity_launch"
        }
        assert "ir.barcoder/InquiryActivity" in victims

    def test_unauthorized_payment_at_runtime(self):
        rt = AndroidRuntime()
        rt.install(build_barcoder())
        intent = RuntimeIntent(sender="evil/App")
        intent.action = "ir.barcoder.PAY_BILL"
        intent.extras["billInfo"] = "attacker-bill"
        rt._send_icc("evil/App", "Context.startActivity", intent)
        rt._drain()
        assert rt.effects_of_kind("sms_sent"), "the unauthorized payment fires"


class TestHesabdar:
    """Intent hijack: account info leaves under an implicit Intent."""

    def test_detected(self):
        detection = SeparDetector().detect(extract_bundle([build_hesabdar()]))
        assert "ir.hesabdar/AccountManagerActivity" in detection.components(
            "intent_hijack"
        )

    def test_scenario_carries_accounts(self, report):
        scenario = next(
            s
            for s in report.scenarios
            if s.vulnerability == "intent_hijack"
            and s.roles["victim"] == "ir.hesabdar/AccountManagerActivity"
        )
        assert Resource.ACCOUNTS in scenario.intent["extras"]
        assert "ir.hesabdar.SHOW_TRANSACTIONS" in scenario.malicious_filter[
            "actions"
        ]


class TestOwnCloud:
    """Information leakage: account info logged to the memory card through
    a chain of Intent passing."""

    def test_detected(self):
        detection = SeparDetector().detect(extract_bundle([build_owncloud()]))
        leaks = detection.components("information_leak")
        assert "com.owncloud.android/AuthenticatorActivity" in leaks

    def test_sat_synthesizes_the_full_chain(self):
        """The formal engine walks the relay closure: the scenario names
        source, intermediate hop, and the draining component."""
        chain_report = Separ().analyze_apks([build_owncloud()])
        scenario = next(
            s
            for s in chain_report.scenarios
            if s.vulnerability == "information_leak"
        )
        assert scenario.roles["source_component"] == (
            "com.owncloud.android/AuthenticatorActivity"
        )
        assert scenario.roles["first_hop"] == (
            "com.owncloud.android/FileSyncService"
        )
        assert scenario.roles["sink_component"] == (
            "com.owncloud.android/LoggerService"
        )

    def test_leak_reaches_sdcard_at_runtime(self):
        rt = AndroidRuntime()
        rt.install(build_owncloud())
        rt.start_component("com.owncloud.android/AuthenticatorActivity")
        writes = rt.effects_of_kind("file_write")
        assert writes
        assert Resource.ACCOUNTS in writes[0].detail["taints"]


class TestErmeteSms:
    """Privilege escalation: WRITE_SMS handed to permission-less callers."""

    def test_detected(self):
        detection = SeparDetector().detect(extract_bundle([build_ermete_sms()]))
        assert "org.ermete.sms/ComposeActivity" in detection.components(
            "privilege_escalation"
        )

    def test_scenario_names_sms_permission(self, report):
        scenario = next(
            s
            for s in report.scenarios
            if s.vulnerability == "privilege_escalation"
            and s.roles["victim"] == "org.ermete.sms/ComposeActivity"
        )
        assert scenario.roles["escalated_permission"] in (
            perms.SEND_SMS,
            perms.WRITE_SMS,
        )

    def test_permissionless_caller_texts_at_runtime(self):
        rt = AndroidRuntime()
        rt.install(build_ermete_sms())
        intent = RuntimeIntent(sender="noperm/App")
        intent.target = "org.ermete.sms/ComposeActivity"
        intent.extras["number"] = "5550001"
        intent.extras["body"] = "spam"
        rt._send_icc("noperm/App", "Context.startActivity", intent)
        rt._drain()
        assert rt.effects_of_kind("sms_sent")


class TestBundlePolicies:
    def test_all_four_classes_policed(self, report):
        vulns = {p.vulnerability for p in report.policies}
        assert {
            "activity_launch",
            "intent_hijack",
            "information_leak",
            "privilege_escalation",
        } <= vulns

    def test_every_finding_app_is_flagged(self, report):
        flagged = set(report.vulnerable_apps())
        assert {
            "ir.barcoder",
            "ir.hesabdar",
            "com.owncloud.android",
            "org.ermete.sms",
        } <= flagged
