"""Sanity tests for the DroidBench/ICC-Bench re-creations."""

import pytest

from repro.benchsuite.droidbench import droidbench_cases
from repro.benchsuite.iccbench import iccbench_cases
from repro.statics import extract_bundle


@pytest.fixture(scope="module")
def droidbench():
    return droidbench_cases()


@pytest.fixture(scope="module")
def iccbench():
    return iccbench_cases()


class TestSuiteStructure:
    def test_droidbench_has_23_leaks(self, droidbench):
        """The paper: 'SEPAR succeeds in detecting all 23 known
        vulnerabilities in DroidBench benchmarks'."""
        assert sum(case.num_leaks for case in droidbench) == 23

    def test_droidbench_row_count(self, droidbench):
        assert len(droidbench) == 23  # Table I's DroidBench rows

    def test_iccbench_rows_and_leaks(self, iccbench):
        assert len(iccbench) == 9
        assert sum(case.num_leaks for case in iccbench) == 9

    def test_unreachable_cases_have_no_leaks(self, droidbench):
        by_name = {c.name: c for c in droidbench}
        assert by_name["ICC_startActivity4"].num_leaks == 0
        assert by_name["ICC_startActivity5"].num_leaks == 0

    def test_case_names_unique(self, droidbench, iccbench):
        names = [c.name for c in droidbench + iccbench]
        assert len(names) == len(set(names))

    def test_iac_cases_span_two_apps(self, droidbench):
        for case in droidbench:
            if case.name.startswith("IAC_"):
                assert len(case.apks) == 2
            else:
                assert len(case.apks) == 1

    def test_expected_pairs_reference_declared_components(self, droidbench, iccbench):
        for case in droidbench + iccbench:
            declared = {
                apk.manifest.qualified(c)
                for apk in case.apks
                for c in apk.manifest.components
            }
            for src, dst in case.expected:
                assert src in declared, f"{case.name}: {src}"
                assert dst in declared, f"{case.name}: {dst}"


class TestCaseExtractability:
    """Every benchmark app must survive the full AME pipeline."""

    def test_all_cases_extract(self, droidbench, iccbench):
        for case in droidbench + iccbench:
            bundle = extract_bundle(case.apks)
            assert bundle.all_components(), case.name

    def test_provider_cases_carry_accesses(self, droidbench):
        for case in droidbench:
            if case.name.startswith(("ICC_delete", "ICC_insert", "ICC_query", "ICC_update")):
                bundle = extract_bundle(case.apks)
                accesses = [
                    a for app in bundle.apps for a in app.provider_accesses
                ]
                assert accesses, case.name
                assert all(a.authority for a in accesses), case.name

    def test_result_cases_have_passive_intents(self, droidbench):
        for case in droidbench:
            if case.name.startswith("ICC_startActivityForResult"):
                bundle = extract_bundle(case.apks)
                passive = [i for i in bundle.all_intents() if i.passive]
                assert passive, case.name
                assert any(i.passive_targets for i in passive), case.name
