"""Tests for DeviceGuard: the continuous-protection deployment loop."""

import pytest

from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.enforcement.guard import DeviceGuard


class TestInstallLoop:
    def test_policies_refresh_on_install(self):
        guard = DeviceGuard()
        guard.install(build_app1())
        after_one = len(guard.policies)
        guard.install(build_app2())
        after_two = len(guard.policies)
        # The messenger brings the launch/escalation policies with it.
        assert after_two > after_one

    def test_attack_blocked_even_after_malicious_install(self):
        """The proactive claim: policies synthesized from the benign bundle
        keep protecting when the (unknown) malicious app arrives later."""
        guard = DeviceGuard()
        guard.install(build_app1())
        guard.install(build_app2())
        guard.install(build_malicious_app())
        guard.start_component("com.example.navigation/LocationFinder")
        assert not guard.runtime.effects_of_kind("sms_sent")
        assert guard.pep.blocked_deliveries > 0

    def test_uninstall_retires_policies(self):
        guard = DeviceGuard()
        guard.install(build_app1())
        guard.install(build_app2())
        with_both = len(guard.policies)
        guard.uninstall("com.example.messenger")
        assert len(guard.policies) < with_both
        assert all(
            p.receiver != "com.example.messenger/MessageSender"
            for p in guard.policies
        )

    def test_unprotected_flow_still_works(self):
        guard = DeviceGuard(prompt_callback=lambda p, e: True)
        guard.install(build_app1())
        guard.install(build_app2())
        guard.start_component("com.example.navigation/LocationFinder")
        delivered = [
            e.component for e in guard.runtime.effects_of_kind("icc_delivered")
        ]
        assert "com.example.navigation/RouteFinder" in delivered

    def test_summary_renders(self):
        guard = DeviceGuard()
        guard.install(build_app1())
        text = guard.protection_summary()
        assert "installed apps:   1" in text
        assert "active policies:" in text

    def test_result_channels_relinked_across_installs(self):
        """Algorithm 1 re-runs bundle-wide as apps arrive."""
        from repro.android.apk import Apk
        from repro.android.components import ComponentDecl, ComponentKind
        from repro.android.manifest import Manifest
        from repro.dex import DexClass, DexProgram, MethodBuilder

        caller = Apk(
            Manifest(
                package="appa",
                components=[ComponentDecl("Caller", ComponentKind.ACTIVITY)],
            ),
            DexProgram([
                DexClass(
                    "Caller",
                    superclass="Activity",
                    methods=[
                        MethodBuilder("onCreate", params=("p0",))
                        .new_instance("v0", "Intent")
                        .const_string("v1", "appb/Picker")
                        .invoke("Intent.setClassName", receiver="v0", args=("v1",))
                        .invoke("Context.startActivityForResult", args=("v0",))
                        .ret()
                        .build()
                    ],
                )
            ]),
        )
        picker = Apk(
            Manifest(
                package="appb",
                components=[
                    ComponentDecl("Picker", ComponentKind.ACTIVITY, exported=True)
                ],
            ),
            DexProgram([
                DexClass(
                    "Picker",
                    superclass="Activity",
                    methods=[
                        MethodBuilder("onCreate", params=("p0",))
                        .new_instance("v0", "Intent")
                        .const_string("v1", "chosen")
                        .invoke("Intent.putExtra", receiver="v0", args=("v1", "v1"))
                        .invoke("Activity.setResult", args=("v0",))
                        .ret()
                        .build()
                    ],
                )
            ]),
        )
        guard = DeviceGuard()
        guard.install(picker)  # passive intent has no known target yet
        bundle = guard.current_bundle()
        passive = [i for i in bundle.all_intents() if i.passive]
        assert passive and not passive[0].passive_targets
        guard.install(caller)  # now Algorithm 1 links the channel
        bundle = guard.current_bundle()
        passive = [i for i in bundle.all_intents() if i.passive]
        assert passive[0].passive_targets == {"appa/Caller"}
