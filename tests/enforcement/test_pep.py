"""End-to-end enforcement: SEPAR policies block the Figure 1 exploit while
legitimate flows keep working."""

import pytest

from repro.android.resources import Resource
from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent
from repro.core.separ import Separ
from repro.enforcement import (
    AndroidRuntime,
    PolicyDecisionPoint,
    PolicyEnforcementPoint,
)
from repro.enforcement.pdp import Decision


@pytest.fixture(scope="module")
def policies():
    report = Separ().analyze_apks([build_app1(), build_app2()])
    return report.policies


def protected_runtime(policies, prompt_callback=None):
    rt = AndroidRuntime()
    rt.install(build_app1())
    rt.install(build_app2())
    rt.install(build_malicious_app())
    kwargs = {}
    if prompt_callback is not None:
        kwargs["prompt_callback"] = prompt_callback
    pdp = PolicyDecisionPoint(policies, **kwargs)
    pep = PolicyEnforcementPoint(rt, pdp)
    pep.install()
    return rt, pdp, pep


class TestPolicyMatching:
    def test_receive_policy_fires_on_matching_event(self):
        policy = ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="service_launch",
            receiver="com.example.messenger/MessageSender",
            extras_any=frozenset({Resource.LOCATION}),
        )
        event = IccEvent(
            sender="com.evil.innocuous/Thief",
            receiver="com.example.messenger/MessageSender",
            extras=frozenset({Resource.LOCATION}),
        )
        assert policy.matches(PolicyEvent.ICC_RECEIVE, event)
        assert not policy.matches(PolicyEvent.ICC_SEND, event)

    def test_extras_condition(self):
        policy = ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="x",
            receiver="a/B",
            extras_any=frozenset({Resource.LOCATION}),
        )
        clean = IccEvent(sender="s/S", receiver="a/B", extras=frozenset())
        assert not policy.matches(PolicyEvent.ICC_RECEIVE, clean)

    def test_allowlist_condition(self):
        policy = ECAPolicy(
            event=PolicyEvent.ICC_SEND,
            vulnerability="intent_hijack",
            sender="a/Sender",
            intent_action="go",
            allowed_receivers=frozenset({"a/Friend"}),
        )
        ok = IccEvent(sender="a/Sender", receiver="a/Friend", action="go")
        bad = IccEvent(sender="a/Sender", receiver="evil/Thief", action="go")
        assert not policy.matches(PolicyEvent.ICC_SEND, ok)
        assert policy.matches(PolicyEvent.ICC_SEND, bad)

    def test_permission_condition(self):
        policy = ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="privilege_escalation",
            receiver="a/B",
            sender_lacks_permission="android.permission.SEND_SMS",
        )
        privileged = IccEvent(
            sender="s/S",
            receiver="a/B",
            sender_permissions=frozenset({"android.permission.SEND_SMS"}),
        )
        unprivileged = IccEvent(sender="s/S", receiver="a/B")
        assert not policy.matches(PolicyEvent.ICC_RECEIVE, privileged)
        assert policy.matches(PolicyEvent.ICC_RECEIVE, unprivileged)


class TestPdp:
    def test_deny_all_prompts_default(self, policies):
        pdp = PolicyDecisionPoint(policies)
        event = IccEvent(
            sender="com.evil.innocuous/Thief",
            receiver="com.example.messenger/MessageSender",
            extras=frozenset({Resource.LOCATION}),
        )
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.DENY
        assert pdp.log[-1].prompted

    def test_no_matching_policy_allows(self, policies):
        pdp = PolicyDecisionPoint(policies)
        event = IccEvent(sender="x/Y", receiver="z/W")
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.ALLOW

    def test_consenting_user_allows(self, policies):
        pdp = PolicyDecisionPoint(policies, prompt_callback=lambda p, e: True)
        event = IccEvent(
            sender="com.evil.innocuous/Thief",
            receiver="com.example.messenger/MessageSender",
            extras=frozenset({Resource.LOCATION}),
        )
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.ALLOW


class TestEndToEndEnforcement:
    def test_exploit_blocked(self, policies):
        """With SEPAR's synthesized policies enforced, the Figure 1 attack
        no longer exfiltrates the location."""
        rt, pdp, pep = protected_runtime(policies)
        rt.start_component("com.example.navigation/LocationFinder")
        assert not rt.effects_of_kind("sms_sent")
        assert pep.blocked_deliveries > 0

    def test_no_crash_in_degraded_mode(self, policies):
        """Blocked ICC must not raise -- the app continues."""
        rt, pdp, pep = protected_runtime(policies)
        rt.start_component("com.example.navigation/LocationFinder")
        rt.start_component("com.example.navigation/LocationFinder")

    def test_user_consent_lets_flow_through(self, policies):
        rt, pdp, pep = protected_runtime(
            policies, prompt_callback=lambda p, e: True
        )
        rt.start_component("com.example.navigation/LocationFinder")
        assert rt.effects_of_kind("sms_sent")

    def test_intra_bundle_leak_also_policed(self, policies):
        """Even without the malicious app, LocationFinder -> RouteFinder is
        an information leak (RouteFinder logs the location), and SEPAR's
        leak policy prompts on it; the hijack allow-list itself does NOT
        fire for this in-bundle receiver."""
        rt = AndroidRuntime()
        rt.install(build_app1())
        rt.install(build_app2())
        pdp = PolicyDecisionPoint(policies)
        pep = PolicyEnforcementPoint(rt, pdp)
        pep.install()
        rt.start_component("com.example.navigation/LocationFinder")
        prompts = [
            r
            for r in pdp.log
            if r.prompted
            and r.event.receiver == "com.example.navigation/RouteFinder"
        ]
        assert prompts
        assert all(
            r.policy.vulnerability != "intent_hijack" for r in prompts
        ), "RouteFinder is in the hijack allow-list"

    def test_approved_intra_bundle_flow_delivers(self, policies):
        rt = AndroidRuntime()
        rt.install(build_app1())
        rt.install(build_app2())
        pdp = PolicyDecisionPoint(policies, prompt_callback=lambda p, e: True)
        pep = PolicyEnforcementPoint(rt, pdp)
        pep.install()
        rt.start_component("com.example.navigation/LocationFinder")
        delivered = [e.component for e in rt.effects_of_kind("icc_delivered")]
        assert "com.example.navigation/RouteFinder" in delivered

    def test_unpoliced_flow_needs_no_prompt(self, policies):
        """A flow no policy covers passes through without prompting."""
        rt = AndroidRuntime()
        rt.install(build_app2())
        pdp = PolicyDecisionPoint(policies)
        pep = PolicyEnforcementPoint(rt, pdp)
        pep.install()
        from repro.enforcement import RuntimeIntent

        intent = RuntimeIntent()
        intent.target = "com.example.messenger/MessageSender"
        intent.extras["TEXT_MSG"] = "hello"  # untainted payload
        rt._send_icc("com.example.messenger/MessageSender", "Context.startService", intent)
        rt._drain()
        assert not any(r.prompted for r in pdp.log)

    def test_hijack_blocked_at_send(self, policies):
        """The hijack policy intercepts delivery to the out-of-allowlist
        thief component specifically."""
        rt, pdp, pep = protected_runtime(policies)
        rt.start_component("com.example.navigation/LocationFinder")
        delivered = [e.component for e in rt.effects_of_kind("icc_delivered")]
        assert "com.evil.innocuous/Thief" not in delivered

    def test_uninstall_restores_behavior(self, policies):
        rt, pdp, pep = protected_runtime(policies)
        pep.uninstall()
        rt.start_component("com.example.navigation/LocationFinder")
        assert rt.effects_of_kind("sms_sent")
