"""Additional runtime-semantics tests: providers, statics, branching,
budgets, and the benchmark-case apps executed concretely."""

import pytest

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.android.resources import Resource
from repro.benchsuite.droidbench import provider_case, start_activity_for_result_n
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.enforcement import AndroidRuntime


class TestProviderDispatch:
    def test_provider_case_executes_end_to_end(self):
        """The DroidBench provider case leaks concretely at runtime: the
        IMEI reaches the provider's SMS sink."""
        case = provider_case("insert")
        rt = AndroidRuntime()
        for apk in case.apks:
            rt.install(apk)
        rt.start_component(f"{case.apks[0].package}/Main")
        assert rt.effects_of_kind("provider_access")
        sms = rt.effects_of_kind("sms_sent")
        assert sms and Resource.IMEI in sms[0].detail["taints"]

    def test_wrong_authority_not_dispatched(self):
        sender = DexClass(
            "Main",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .const_string("v0", "content://unknown.authority/items")
                .const_string("v1", "data")
                .invoke("ContentResolver.insert", args=("v0", "v1"))
                .ret()
                .build()
            ],
        )
        provider = DexClass(
            "Prov",
            superclass="ContentProvider",
            methods=[
                MethodBuilder("insert", params=("p0", "p1"))
                .invoke("Log.d", args=("p0", "p1"))
                .ret()
                .build()
            ],
        )
        rt = AndroidRuntime()
        rt.install(
            Apk(
                Manifest(
                    package="p",
                    components=[
                        ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True),
                        ComponentDecl(
                            "Prov",
                            ComponentKind.PROVIDER,
                            exported=True,
                            authority="p.provider",
                        ),
                    ],
                ),
                DexProgram([sender, provider]),
            )
        )
        rt.start_component("p/Main")
        assert not rt.effects_of_kind("provider_access")

    def test_private_provider_cross_app_blocked(self):
        sender = DexClass(
            "Main",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .const_string("v0", "content://b.provider/items")
                .const_string("v1", "data")
                .invoke("ContentResolver.insert", args=("v0", "v1"))
                .ret()
                .build()
            ],
        )
        provider = DexClass(
            "Prov",
            superclass="ContentProvider",
            methods=[
                MethodBuilder("insert", params=("p0", "p1")).ret().build()
            ],
        )
        rt = AndroidRuntime()
        rt.install(
            Apk(
                Manifest(
                    package="a",
                    components=[
                        ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True)
                    ],
                ),
                DexProgram([sender]),
            )
        )
        rt.install(
            Apk(
                Manifest(
                    package="b",
                    components=[
                        ComponentDecl(
                            "Prov",
                            ComponentKind.PROVIDER,
                            exported=False,
                            authority="b.provider",
                        )
                    ],
                ),
                DexProgram([provider]),
            )
        )
        rt.start_component("a/Main")
        assert not rt.effects_of_kind("provider_access")


class TestInterpreterSemantics:
    def _run(self, methods, package="p"):
        rt = AndroidRuntime()
        rt.install(
            Apk(
                Manifest(
                    package=package,
                    components=[
                        ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True)
                    ],
                ),
                DexProgram(
                    [DexClass("Main", superclass="Activity", methods=methods)]
                ),
            )
        )
        rt.start_component(f"{package}/Main")
        return rt

    def test_static_fields_roundtrip(self):
        rt = self._run(
            [
                MethodBuilder("onCreate", params=("p0",))
                .const_string("v0", "stored")
                .sput("Main.cache", "v0")
                .sget("v1", "Main.cache")
                .invoke("Log.d", args=("v9", "v1"))
                .ret()
                .build()
            ]
        )
        assert rt.effects_of_kind("log")[0].detail["payload"] == "stored"

    def test_branch_taken_on_truthy(self):
        rt = self._run(
            [
                MethodBuilder("onCreate", params=("p0",))
                .const_string("v0", "truthy")
                .if_goto("v0", "skip")
                .const_string("v1", "not-taken")
                .invoke("Log.d", args=("v9", "v1"))
                .label("skip")
                .ret()
                .build()
            ]
        )
        assert not rt.effects_of_kind("log")

    def test_branch_not_taken_on_none(self):
        rt = self._run(
            [
                MethodBuilder("onCreate", params=("p0",))
                .if_goto("vNone", "skip")
                .const_string("v1", "taken")
                .invoke("Log.d", args=("v9", "v1"))
                .label("skip")
                .ret()
                .build()
            ]
        )
        assert rt.effects_of_kind("log")

    def test_internal_call_return_value(self):
        rt = self._run(
            [
                MethodBuilder("onCreate", params=("p0",))
                .invoke("this.make", dest="v0")
                .invoke("Log.d", args=("v9", "v0"))
                .ret()
                .build(),
                MethodBuilder("make")
                .const_string("v0", "made")
                .ret("v0")
                .build(),
            ]
        )
        assert rt.effects_of_kind("log")[0].detail["payload"] == "made"

    def test_infinite_loop_budget(self):
        with pytest.raises(RuntimeError):
            self._run(
                [
                    MethodBuilder("onCreate", params=("p0",))
                    .label("top")
                    .const_string("v0", "x")
                    .goto("top")
                    .build()
                ]
            )

    def test_set_result_without_channel_is_noop(self):
        rt = self._run(
            [
                MethodBuilder("onCreate", params=("p0",))
                .new_instance("v0", "Intent")
                .invoke("Activity.setResult", args=("v0",))
                .ret()
                .build()
            ]
        )
        assert not rt.effects_of_kind("icc_delivered")


class TestResultChannelConcrete:
    def test_droidbench_result_case_leaks_at_runtime(self):
        case = start_activity_for_result_n(1)
        rt = AndroidRuntime()
        for apk in case.apks:
            rt.install(apk)
        rt.start_component(f"{case.apks[0].package}/Caller")
        sms = rt.effects_of_kind("sms_sent")
        assert sms and Resource.IMEI in sms[0].detail["taints"]
