"""Audit retention: rotation, spill segments, sampling, truthful summary."""

import json

import pytest

from repro.core.policy import IccEvent, PolicyEvent
from repro.enforcement import AuditLog, make_pdp


def append_n(log, n, verdict="allow", matched=False, prompted=False, start=0):
    for i in range(start, start + n):
        log.append(
            event_kind="icc_receive",
            sender=f"app/S{i % 7}",
            receiver="app/R",
            action=f"ACT{i % 3}",
            payload=[],
            sender_permissions=[],
            verdict=verdict,
            policy_vulnerability="service_launch" if matched else None,
            policy_action="deny" if matched else None,
            prompted=prompted,
        )


class TestRotation:
    def test_window_bounds_resident_records(self):
        log = AuditLog(window=100)
        append_n(log, 1000)
        assert len(log) <= 100
        # Amortized eviction keeps at least half the window resident.
        assert len(log) >= 50

    def test_summary_exact_after_rotation(self):
        log = AuditLog(window=64)
        append_n(log, 500)
        append_n(log, 30, verdict="deny", matched=True)
        assert log.summary() == {
            "decisions": 530,
            "allowed": 500,
            "denied": 30,
            "prompted": 0,
            "matched": 30,
        }

    def test_sequence_numbers_survive_rotation(self):
        log = AuditLog(window=32)
        append_n(log, 200)
        seqs = [r.seq for r in log]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 199

    def test_spill_segments_written(self, tmp_path):
        log = AuditLog(window=32, spill_dir=str(tmp_path))
        append_n(log, 200)
        assert log.retention()["segments"] >= 1
        assert log.retention()["rotated"] > 0
        total = sum(
            1
            for path in log.segments
            for line in open(path, encoding="utf-8")
            if line.strip()
        )
        assert total == log.retention()["rotated"]

    def test_round_trip_across_rotation_boundary(self, tmp_path):
        """loads(dump_all()) restores every decision in order even when
        the stream crossed multiple rotation boundaries."""
        log = AuditLog(window=32, spill_dir=str(tmp_path))
        append_n(log, 150)
        append_n(log, 10, verdict="deny", matched=True, start=150)
        restored = AuditLog.loads(log.dump_all())
        assert [r.seq for r in restored] == list(range(160))
        assert restored.summary() == log.summary()
        assert [r.to_dict() for r in restored][-10:] == [
            r.to_dict() for r in list(log)[-10:]
        ]

    def test_write_load_round_trip_with_segments(self, tmp_path):
        log = AuditLog(window=16, spill_dir=str(tmp_path / "spill"))
        append_n(log, 80)
        out = tmp_path / "audit.jsonl"
        log.write(str(out))
        restored = AuditLog.load(str(out))
        assert len(restored) == 80
        assert restored.summary()["decisions"] == 80

    def test_dropping_rotation_without_spill_dir(self):
        log = AuditLog(window=16)
        append_n(log, 100)
        assert log.segments == []
        assert log.retention()["rotated"] == 100 - len(log)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            AuditLog(window=0)


class TestSampling:
    def test_fallthroughs_sampled_one_in_n(self):
        log = AuditLog(sample_default_allow=10)
        append_n(log, 100)  # all default-allow fallthroughs
        assert len(log) == 10  # first of every 10 kept
        assert log.summary()["decisions"] == 100  # counters stay exact
        assert log.retention()["sampled_out"] == 90

    def test_matched_and_denied_never_sampled(self):
        log = AuditLog(sample_default_allow=10)
        append_n(log, 50)
        append_n(log, 20, verdict="deny", matched=True, start=50)
        append_n(log, 7, verdict="allow", matched=True, prompted=True, start=70)
        resident = list(log)
        assert sum(1 for r in resident if r.matched) == 27
        assert log.summary()["denied"] == 20
        assert log.summary()["prompted"] == 7

    def test_sampled_log_seq_reflects_true_order(self):
        log = AuditLog(sample_default_allow=4)
        append_n(log, 16)
        assert [r.seq for r in log] == [0, 4, 8, 12]


class TestPdpIntegration:
    def test_pdp_drives_rotation_and_sampling(self, tmp_path):
        audit = AuditLog(
            window=32, spill_dir=str(tmp_path), sample_default_allow=2
        )
        pdp = make_pdp([], audit=audit)
        for i in range(200):
            pdp.decide(
                PolicyEvent.ICC_RECEIVE,
                IccEvent(sender="a/S", receiver="a/R", action=f"ACT{i}"),
            )
        summary = pdp.audit.summary()
        assert summary["decisions"] == 200
        assert summary["allowed"] == 200
        retention = pdp.audit.retention()
        assert retention["sampled_out"] == 100
        assert retention["resident"] <= 32
        restored = AuditLog.loads(pdp.audit.dump_all())
        assert restored.summary()["decisions"] == 100  # materialized records

    def test_segment_files_are_valid_jsonl(self, tmp_path):
        audit = AuditLog(window=16, spill_dir=str(tmp_path))
        pdp = make_pdp([], audit=audit)
        for i in range(100):
            pdp.decide(
                PolicyEvent.ICC_RECEIVE,
                IccEvent(sender="a/S", receiver="a/R", action=f"A{i}"),
            )
        for path in audit.segments:
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    record = json.loads(line)
                    assert record["verdict"] in ("allow", "deny")
