"""Tests for the simulated Android runtime and the hook framework."""

import pytest

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.android import permissions as perms
from repro.android.resources import Resource
from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.enforcement import AndroidRuntime, RuntimeIntent
from repro.enforcement.hooks import HookManager, MethodCall
from repro.enforcement.runtime import Tagged, taints_of


class TestHookManager:
    def test_before_hook_runs(self):
        hooks = HookManager()
        seen = []
        hooks.hook("A.b", before=lambda c: seen.append(c.signature))
        call = MethodCall("A.b", "cmp")
        hooks.run_before(call)
        assert seen == ["A.b"]

    def test_skip_short_circuits(self):
        hooks = HookManager()
        hooks.hook("A.b", before=lambda c: setattr(c, "skip", True))
        later = []
        hooks.hook("A.b", before=lambda c: later.append(1))
        call = MethodCall("A.b", "cmp")
        hooks.run_before(call)
        assert call.skip and not later

    def test_after_hook_rewrites_result(self):
        hooks = HookManager()

        def rewrite(call):
            call.result = "rewritten"

        hooks.hook("A.b", after=rewrite)
        call = MethodCall("A.b", "cmp")
        call.result = "original"
        hooks.run_after(call)
        assert call.result == "rewritten"

    def test_unhook(self):
        hooks = HookManager()
        hooks.hook("A.b", before=lambda c: setattr(c, "skip", True))
        hooks.unhook_all("A.b")
        assert not hooks.is_hooked("A.b")

    def test_hook_requires_callback(self):
        with pytest.raises(ValueError):
            HookManager().hook("A.b")


class TestRuntimeBasics:
    def test_install_and_duplicate(self):
        rt = AndroidRuntime()
        rt.install(build_app1())
        with pytest.raises(ValueError):
            rt.install(build_app1())

    def test_start_unknown_component(self):
        rt = AndroidRuntime()
        with pytest.raises(KeyError):
            rt.start_component("nope/Nothing")

    def test_tagged_taint_propagation(self):
        tagged = Tagged("x", frozenset({Resource.LOCATION}))
        intent = RuntimeIntent()
        intent.extras["k"] = tagged
        assert taints_of(intent) == {Resource.LOCATION}

    def test_intra_app_icc(self):
        """LocationFinder's implicit Intent reaches RouteFinder when no
        malicious app is installed."""
        rt = AndroidRuntime()
        rt.install(build_app1())
        rt.start_component("com.example.navigation/LocationFinder")
        delivered = rt.effects_of_kind("icc_delivered")
        assert [e.component for e in delivered] == [
            "com.example.navigation/RouteFinder"
        ]
        logs = rt.effects_of_kind("log")
        assert logs and Resource.LOCATION in logs[0].detail["taints"]


class TestExploitChain:
    """The Figure 1 attack, executed concretely."""

    def make_runtime(self):
        rt = AndroidRuntime()
        rt.install(build_app1())
        rt.install(build_app2())
        rt.install(build_malicious_app())
        return rt

    def test_unprotected_device_leaks_location_via_sms(self):
        rt = self.make_runtime()
        rt.start_component("com.example.navigation/LocationFinder")
        sms = rt.effects_of_kind("sms_sent")
        assert sms, "the exploit must fire on an unprotected device"
        assert Resource.LOCATION in sms[0].detail["taints"]

    def test_hijack_before_forwarding(self):
        rt = self.make_runtime()
        rt.start_component("com.example.navigation/LocationFinder")
        delivered = [e.component for e in rt.effects_of_kind("icc_delivered")]
        assert "com.evil.innocuous/Thief" in delivered
        assert "com.example.messenger/MessageSender" in delivered


class TestPermissionEnforcement:
    def test_manifest_permission_blocks_unprivileged_caller(self):
        guarded = Apk(
            Manifest(
                package="guarded",
                components=[
                    ComponentDecl(
                        "Svc",
                        ComponentKind.SERVICE,
                        exported=True,
                        permission=perms.SEND_SMS,
                    )
                ],
            ),
            DexProgram(
                [
                    DexClass(
                        "Svc",
                        superclass="Service",
                        methods=[
                            MethodBuilder("onStartCommand", params=("p0",))
                            .invoke("Log.d", args=("p0", "p0"))
                            .ret()
                            .build()
                        ],
                    )
                ]
            ),
        )
        caller = Apk(
            Manifest(
                package="caller",
                components=[ComponentDecl("Main", ComponentKind.ACTIVITY)],
            ),
            DexProgram(
                [
                    DexClass(
                        "Main",
                        superclass="Activity",
                        methods=[
                            MethodBuilder("onCreate", params=("p0",))
                            .new_instance("v0", "Intent")
                            .const_string("v1", "guarded/Svc")
                            .invoke("Intent.setClassName", receiver="v0", args=("v1",))
                            .invoke("Context.startService", args=("v0",))
                            .ret()
                            .build()
                        ],
                    )
                ]
            ),
        )
        rt = AndroidRuntime()
        rt.install(guarded)
        rt.install(caller)
        rt.start_component("caller/Main")
        assert rt.effects_of_kind("icc_permission_denied")
        assert not rt.effects_of_kind("icc_delivered")

    def test_check_calling_permission_concrete(self):
        """The fixed messenger refuses senders without SEND_SMS."""
        fixed = DexClass(
            "Fixed",
            superclass="Service",
            methods=[
                MethodBuilder("onStartCommand", params=("p0",))
                .const_string("v0", perms.SEND_SMS)
                .invoke("Context.checkCallingPermission", args=("v0",), dest="v1")
                .if_goto("v1", "ok")
                .ret()
                .label("ok")
                .invoke("SmsManager.getDefault", dest="v2")
                .const_string("v3", "payload")
                .invoke(
                    "SmsManager.sendTextMessage",
                    receiver="v2",
                    args=("v3", "v3", "v3", "v3", "v3"),
                )
                .ret()
                .build()
            ],
        )
        target = Apk(
            Manifest(
                package="t",
                components=[
                    ComponentDecl(
                        "Fixed",
                        ComponentKind.SERVICE,
                        intent_filters=[IntentFilter.for_action("go")],
                    )
                ],
            ),
            DexProgram([fixed]),
        )

        def make_caller(package, permissions):
            cls = DexClass(
                "Main",
                superclass="Activity",
                methods=[
                    MethodBuilder("onCreate", params=("p0",))
                    .new_instance("v0", "Intent")
                    .const_string("v1", "go")
                    .invoke("Intent.setAction", receiver="v0", args=("v1",))
                    .invoke("Context.startService", args=("v0",))
                    .ret()
                    .build()
                ],
            )
            return Apk(
                Manifest(
                    package=package,
                    uses_permissions=frozenset(permissions),
                    components=[ComponentDecl("Main", ComponentKind.ACTIVITY)],
                ),
                DexProgram([cls]),
            )

        rt = AndroidRuntime()
        rt.install(target)
        rt.install(make_caller("privileged", [perms.SEND_SMS]))
        rt.install(make_caller("unprivileged", []))

        rt.start_component("unprivileged/Main")
        assert not rt.effects_of_kind("sms_sent")
        rt.start_component("privileged/Main")
        assert rt.effects_of_kind("sms_sent")


class TestResultChannel:
    def test_set_result_returns_to_caller(self):
        caller = DexClass(
            "Caller",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .new_instance("v0", "Intent")
                .const_string("v1", "appb/Picker")
                .invoke("Intent.setClassName", receiver="v0", args=("v1",))
                .invoke("Context.startActivityForResult", args=("v0",))
                .ret()
                .build(),
                MethodBuilder("onActivityResult", params=("p0",))
                .const_string("v1", "chosen")
                .invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
                .invoke("Log.d", args=("v3", "v2"))
                .ret()
                .build(),
            ],
        )
        picker = DexClass(
            "Picker",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .new_instance("v0", "Intent")
                .const_string("v1", "chosen")
                .const_string("v2", "result-value")
                .invoke("Intent.putExtra", receiver="v0", args=("v1", "v2"))
                .invoke("Activity.setResult", args=("v0",))
                .ret()
                .build(),
            ],
        )
        rt = AndroidRuntime()
        rt.install(
            Apk(
                Manifest(
                    package="appa",
                    components=[ComponentDecl("Caller", ComponentKind.ACTIVITY)],
                ),
                DexProgram([caller]),
            )
        )
        rt.install(
            Apk(
                Manifest(
                    package="appb",
                    components=[
                        ComponentDecl("Picker", ComponentKind.ACTIVITY, exported=True)
                    ],
                ),
                DexProgram([picker]),
            )
        )
        rt.start_component("appa/Caller")
        logs = rt.effects_of_kind("log")
        assert logs and logs[0].detail["payload"] == "result-value"


class TestBroadcast:
    def test_broadcast_reaches_all_matching_receivers(self):
        def receiver_app(pkg):
            cls = DexClass(
                "Recv",
                superclass="BroadcastReceiver",
                methods=[
                    MethodBuilder("onReceive", params=("p0",))
                    .const_string("v0", "tag")
                    .invoke("Log.d", args=("v0", "v0"))
                    .ret()
                    .build()
                ],
            )
            return Apk(
                Manifest(
                    package=pkg,
                    components=[
                        ComponentDecl(
                            "Recv",
                            ComponentKind.RECEIVER,
                            intent_filters=[IntentFilter.for_action("ping")],
                        )
                    ],
                ),
                DexProgram([cls]),
            )

        sender_cls = DexClass(
            "Main",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .new_instance("v0", "Intent")
                .const_string("v1", "ping")
                .invoke("Intent.setAction", receiver="v0", args=("v1",))
                .invoke("Context.sendBroadcast", args=("v0",))
                .ret()
                .build()
            ],
        )
        rt = AndroidRuntime()
        rt.install(receiver_app("r1"))
        rt.install(receiver_app("r2"))
        rt.install(
            Apk(
                Manifest(
                    package="s",
                    components=[ComponentDecl("Main", ComponentKind.ACTIVITY)],
                ),
                DexProgram([sender_cls]),
            )
        )
        rt.start_component("s/Main")
        delivered = {e.component for e in rt.effects_of_kind("icc_delivered")}
        assert delivered == {"r1/Recv", "r2/Recv"}
        assert len(rt.effects_of_kind("log")) == 2

    def test_dynamic_registration_at_runtime(self):
        registrar = DexClass(
            "Main",
            superclass="Activity",
            methods=[
                MethodBuilder("onCreate", params=("p0",))
                .new_instance("v0", "DynRecv")
                .new_instance("v1", "IntentFilter")
                .const_string("v2", "dyn.PING")
                .invoke("IntentFilter.addAction", receiver="v1", args=("v2",))
                .invoke("Context.registerReceiver", args=("v0", "v1"))
                .ret()
                .build()
            ],
        )
        dyn = DexClass(
            "DynRecv",
            superclass="BroadcastReceiver",
            methods=[
                MethodBuilder("onReceive", params=("p0",))
                .const_string("v0", "tag")
                .invoke("Log.d", args=("v0", "v0"))
                .ret()
                .build()
            ],
        )
        rt = AndroidRuntime()
        rt.install(
            Apk(
                Manifest(
                    package="d",
                    components=[
                        ComponentDecl("Main", ComponentKind.ACTIVITY),
                        ComponentDecl("DynRecv", ComponentKind.RECEIVER),
                    ],
                ),
                DexProgram([registrar, dyn]),
            )
        )
        rt.start_component("d/Main")  # registers the filter
        intent = RuntimeIntent(sender="android/framework")
        intent.action = "dyn.PING"
        # Broadcast from the framework.
        rt._send_icc("d/Main", "Context.sendBroadcast", intent)
        rt._drain()
        assert rt.effects_of_kind("log")
