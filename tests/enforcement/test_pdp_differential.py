"""Differential testing: compiled PDP vs the linear reference oracle.

Replays seeded randomized policy sets and event streams (the same
generator ``repro bench`` measures with) through both backends and
asserts the *entire observable behaviour* is identical: the decision
sequence, the audit-record sequence (``to_dict`` for ``seq`` included),
and the prompt-callback invocations -- under both a consenting and a
refusing user, and across mid-stream policy installs/removals.
"""

import random

import pytest

from repro.benchsuite.bench import make_enforcement_workload
from repro.enforcement import make_pdp

SEEDS = [2016, 7, 99, 1234]


def replay(backend, policies, stream, prompt):
    pdp = make_pdp(policies, backend=backend, prompt_callback=prompt)
    decisions = [pdp.decide(kind, event) for kind, event in stream]
    return pdp, decisions


def assert_identical(policies, stream, prompt):
    linear, lin_decisions = replay("linear", policies, stream, prompt)
    compiled, cmp_decisions = replay("compiled", policies, stream, prompt)
    assert lin_decisions == cmp_decisions
    lin_audit = [r.to_dict() for r in linear.audit]
    cmp_audit = [r.to_dict() for r in compiled.audit]
    assert lin_audit == cmp_audit
    assert linear.audit.summary() == compiled.audit.summary()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("consent", [True, False])
def test_randomized_streams_identical(seed, consent):
    policies, stream = make_enforcement_workload(
        seed=seed, num_policies=64, num_shapes=128, num_events=1500
    )
    assert_identical(policies, stream, lambda p, e: consent)


@pytest.mark.parametrize("seed", SEEDS)
def test_alternating_prompt_answers_identical(seed):
    """A stateful user (alternating answers) exposes any cached prompt:
    both backends must consult the callback the same number of times in
    the same order."""
    policies, stream = make_enforcement_workload(
        seed=seed, num_policies=64, num_shapes=96, num_events=1000
    )

    def make_prompt():
        state = {"n": 0}

        def prompt(policy, event):
            state["n"] += 1
            return state["n"] % 2 == 0

        return state, prompt

    lin_state, lin_prompt = make_prompt()
    cmp_state, cmp_prompt = make_prompt()
    linear, lin_decisions = replay("linear", policies, stream, lin_prompt)
    compiled, cmp_decisions = replay("compiled", policies, stream, cmp_prompt)
    assert lin_decisions == cmp_decisions
    assert lin_state["n"] == cmp_state["n"]
    assert [r.to_dict() for r in linear.audit] == [
        r.to_dict() for r in compiled.audit
    ]


@pytest.mark.parametrize("seed", SEEDS)
def test_mid_stream_policy_churn_identical(seed):
    """Install/remove policies at deterministic points mid-stream: the
    compiled cache must invalidate exactly where the linear scan just
    sees the new list."""
    rng = random.Random(seed)
    policies, stream = make_enforcement_workload(
        seed=seed, num_policies=48, num_shapes=96, num_events=1200
    )
    initial, spares = policies[:32], policies[32:]

    def churn(pdp):
        decisions = []
        local_spares = list(spares)
        for i, (kind, event) in enumerate(stream):
            if i % 200 == 100 and local_spares:
                pdp.add_policy(local_spares.pop())
            if i % 350 == 200 and pdp.policies:
                keep = list(pdp.policies)
                keep.pop(rng.randrange(len(keep)))
                pdp.policies = keep
            decisions.append(pdp.decide(kind, event))
        return decisions

    # Seed rng identically per backend: re-create for each replay.
    rng = random.Random(seed)
    linear = make_pdp(initial, backend="linear", prompt_callback=lambda p, e: True)
    lin_decisions = churn(linear)
    rng = random.Random(seed)
    compiled = make_pdp(
        initial, backend="compiled", prompt_callback=lambda p, e: True
    )
    cmp_decisions = churn(compiled)
    assert lin_decisions == cmp_decisions
    assert [r.to_dict() for r in linear.audit] == [
        r.to_dict() for r in compiled.audit
    ]


def test_decision_log_sequences_identical():
    policies, stream = make_enforcement_workload(
        seed=5, num_policies=40, num_shapes=64, num_events=600
    )
    linear, _ = replay("linear", policies, stream, lambda p, e: False)
    compiled, _ = replay("compiled", policies, stream, lambda p, e: False)
    assert len(linear.log) == len(compiled.log)
    for lin_rec, cmp_rec in zip(linear.log, compiled.log):
        assert lin_rec.decision is cmp_rec.decision
        assert lin_rec.policy == cmp_rec.policy
        assert lin_rec.prompted == cmp_rec.prompted
        assert lin_rec.event == cmp_rec.event
