"""The enforcement audit log: every PDP decision recorded, in dispatch
order, queryable, and round-trippable through JSONL."""

import threading

import pytest

from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core.separ import Separ
from repro.enforcement import (
    AndroidRuntime,
    AuditLog,
    AuditRecord,
    PolicyDecisionPoint,
    PolicyEnforcementPoint,
)

ENTRY = "com.example.navigation/LocationFinder"


@pytest.fixture(scope="module")
def policies():
    report = Separ().analyze_apks([build_app1(), build_app2()])
    return report.policies


def run_protected(policies, consent=False):
    rt = AndroidRuntime()
    rt.install(build_app1())
    rt.install(build_app2())
    rt.install(build_malicious_app())
    kwargs = {"prompt_callback": (lambda policy, event: True)} if consent else {}
    pdp = PolicyDecisionPoint(policies, **kwargs)
    PolicyEnforcementPoint(rt, pdp).install()
    rt.start_component(ENTRY)
    return rt, pdp


class TestOrderingUnderDispatch:
    def test_every_decision_audited_in_sequence(self, policies):
        """Queued ICC dispatch interleaves deliveries from several
        components; the audit log must still be gap-free and ordered."""
        _, pdp = run_protected(policies)
        log = pdp.audit
        assert len(log) > 0
        assert [r.seq for r in log] == list(range(len(log)))
        # One audit record per legacy decision record, same order.
        assert len(log) == len(pdp.log)
        for audit_rec, decision in zip(log, pdp.log):
            assert audit_rec.verdict == decision.decision.value

    def test_attack_denial_is_queryable(self, policies):
        _, pdp = run_protected(policies)
        denials = pdp.audit.denials()
        assert denials
        assert all(r.verdict == "deny" for r in denials)
        assert any(r.matched for r in denials)
        # The synthesized policy that fired names its vulnerability.
        assert any(r.policy_vulnerability for r in denials)

    def test_consent_flips_prompted_outcomes(self, policies):
        _, cautious = run_protected(policies, consent=False)
        _, consenting = run_protected(policies, consent=True)
        prompted_deny = cautious.audit.query(prompted=True)
        prompted_allow = consenting.audit.query(prompted=True)
        if prompted_deny or prompted_allow:  # prompts exist for this bundle
            assert all(r.prompt_approved is False for r in prompted_deny)
            assert all(r.prompt_approved is True for r in prompted_allow)
        assert consenting.audit.summary()["denied"] <= (
            cautious.audit.summary()["denied"]
        )

    def test_summary_counts_are_consistent(self, policies):
        _, pdp = run_protected(policies)
        summary = pdp.audit.summary()
        assert summary["decisions"] == len(pdp.audit)
        assert summary["allowed"] + summary["denied"] == summary["decisions"]
        assert summary["matched"] >= summary["denied"]


class TestConcurrentAppend:
    def test_seq_is_gap_free_across_threads(self):
        log = AuditLog()
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            for _ in range(50):
                log.append(
                    event_kind="icc_send", sender="s", receiver="r",
                    action=None, payload=[], sender_permissions=[],
                    verdict="allow",
                )

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [r.seq for r in log] == list(range(400))


class TestRoundTrip:
    def test_jsonl_round_trip(self, policies, tmp_path):
        _, pdp = run_protected(policies)
        path = tmp_path / "audit.jsonl"
        pdp.audit.write(str(path))
        restored = AuditLog.load(str(path))
        assert [r.to_dict() for r in restored] == [
            r.to_dict() for r in pdp.audit
        ]
        assert restored.summary() == pdp.audit.summary()

    def test_record_round_trip_preserves_optionals(self):
        record = AuditRecord(
            seq=3, event_kind="icc_receive", sender="a", receiver=None,
            action="android.intent.action.VIEW", payload=["LOCATION"],
            sender_permissions=["p1"], verdict="deny",
            policy_vulnerability="intent_hijack", policy_action="deny",
            policy_description="d", prompted=True, prompt_approved=False,
            context="Context.startActivity",
        )
        assert AuditRecord.from_dict(record.to_dict()) == record
        assert record.matched

    def test_query_filters_compose(self):
        log = AuditLog()
        log.append(
            event_kind="icc_send", sender="a", receiver="x", action=None,
            payload=[], sender_permissions=[], verdict="deny",
            policy_vulnerability="intent_hijack",
        )
        log.append(
            event_kind="icc_send", sender="b", receiver="x", action=None,
            payload=[], sender_permissions=[], verdict="allow",
        )
        assert len(log.query(receiver="x")) == 2
        assert len(log.query(receiver="x", verdict="deny")) == 1
        assert log.query(matched=False)[0].sender == "b"
        assert log.query(vulnerability="intent_hijack")[0].sender == "a"
