"""The compiled PDP backend: indexed dispatch, decision cache, factory."""

import pytest

from repro.android.resources import Resource
from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent
from repro.enforcement import (
    DEFAULT_PDP_BACKEND,
    PDP_BACKENDS,
    CompiledPolicyDecisionPoint,
    CompiledPolicySet,
    Decision,
    PolicyDecisionPoint,
    make_pdp,
)
from repro.enforcement.compiled import cache_key


def receive_policy(receiver, action=None, verdict=PolicyAction.DENY, **kw):
    return ECAPolicy(
        event=PolicyEvent.ICC_RECEIVE,
        vulnerability="service_launch",
        action=verdict,
        receiver=receiver,
        intent_action=action,
        **kw,
    )


def event(receiver="a/R", action="ACT", sender="m/S", **kw):
    return IccEvent(sender=sender, receiver=receiver, action=action, **kw)


class TestCompiledPolicySet:
    def test_exact_bucket_dispatch(self):
        cps = CompiledPolicySet([receive_policy("a/R", "ACT")])
        assert cps.match(PolicyEvent.ICC_RECEIVE, event()) is cps.policies[0]
        assert cps.match(PolicyEvent.ICC_RECEIVE, event(action="OTHER")) is None
        assert cps.match(PolicyEvent.ICC_SEND, event()) is None

    def test_first_match_order_across_buckets(self):
        """A wildcard policy installed *before* an exact one must win,
        even though it lives in a lower-specificity bucket."""
        wildcard = ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="information_leak",
            action=PolicyAction.DENY,
            extras_any=frozenset({Resource.LOCATION}),
        )
        exact = receive_policy("a/R", "ACT")
        cps = CompiledPolicySet([wildcard, exact])
        hit = cps.match(
            PolicyEvent.ICC_RECEIVE,
            event(extras=frozenset({Resource.LOCATION})),
        )
        assert hit is wildcard
        # Without the wildcard's payload the exact policy fires.
        assert cps.match(PolicyEvent.ICC_RECEIVE, event()) is exact

    def test_sender_bucket_and_unresolved_receiver(self):
        hijack = ECAPolicy(
            event=PolicyEvent.ICC_SEND,
            vulnerability="intent_hijack",
            action=PolicyAction.DENY,
            sender="m/S",
            intent_action="ACT",
            allowed_receivers=frozenset({"ok/R"}),
        )
        cps = CompiledPolicySet([hijack])
        assert (
            cps.match(PolicyEvent.ICC_SEND, event(receiver="evil/R")) is hijack
        )
        assert cps.match(PolicyEvent.ICC_SEND, event(receiver="ok/R")) is None
        # Unresolved receiver: candidate lookup must not require one.
        assert cps.match(PolicyEvent.ICC_SEND, event(receiver=None)) is None

    def test_none_action_event_skips_exact_bucket_safely(self):
        cps = CompiledPolicySet(
            [receive_policy("a/R", "ACT"), receive_policy("a/R")]
        )
        hit = cps.match(PolicyEvent.ICC_RECEIVE, event(action=None))
        assert hit is cps.policies[1]

    def test_candidates_are_priority_sorted(self):
        policies = [
            receive_policy("a/R"),
            receive_policy("a/R", "ACT"),
            receive_policy("a/R", sender_lacks_permission="p.X"),
        ]
        cps = CompiledPolicySet(policies)
        ranks = [rank for rank, _ in cps.candidates(PolicyEvent.ICC_RECEIVE, event())]
        assert ranks == sorted(ranks)


class TestMakePdp:
    def test_default_is_compiled(self):
        assert DEFAULT_PDP_BACKEND == "compiled"
        assert isinstance(make_pdp(), CompiledPolicyDecisionPoint)

    def test_linear_backend(self):
        pdp = make_pdp(backend="linear")
        assert type(pdp) is PolicyDecisionPoint

    def test_registry_matches_factory(self):
        for name, cls in PDP_BACKENDS.items():
            assert type(make_pdp(backend=name)) is cls

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown PDP backend"):
            make_pdp(backend="quantum")


class TestDecisionCache:
    def test_repeat_shape_hits_cache(self):
        pdp = make_pdp([receive_policy("a/R", "ACT")])
        for _ in range(5):
            assert pdp.decide(PolicyEvent.ICC_RECEIVE, event()) is Decision.DENY
        assert pdp.cache_hits == 4
        assert pdp.cache_misses == 1
        # Every decision still audited, cached or not.
        assert pdp.audit.summary()["decisions"] == 5

    def test_prompt_never_cached(self):
        answers = iter([True, False, True])
        pdp = make_pdp(
            [receive_policy("a/R", "ACT", verdict=PolicyAction.PROMPT)],
            prompt_callback=lambda p, e: next(answers),
        )
        got = [pdp.decide(PolicyEvent.ICC_RECEIVE, event()) for _ in range(3)]
        assert got == [Decision.ALLOW, Decision.DENY, Decision.ALLOW]
        assert pdp.cache_hits == 0
        assert pdp.audit.summary()["prompted"] == 3

    def test_install_invalidates_mid_stream(self):
        """A policy installed mid-stream must take effect immediately --
        stale cached fallthroughs would keep allowing."""
        pdp = make_pdp([])
        ev = event()
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, ev) is Decision.ALLOW
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, ev) is Decision.ALLOW
        assert pdp.cache_hits == 1
        pdp.add_policy(receive_policy("a/R", "ACT"))
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, ev) is Decision.DENY
        assert pdp.cache_invalidations == 1

    def test_uninstall_invalidates_mid_stream(self):
        pdp = make_pdp([receive_policy("a/R", "ACT")])
        ev = event()
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, ev) is Decision.DENY
        pdp.policies = []  # DeviceGuard._refresh protocol: plain assignment
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, ev) is Decision.ALLOW

    def test_cache_bounded_by_whole_reset(self):
        pdp = CompiledPolicyDecisionPoint([], cache_max_entries=4)
        for i in range(10):
            pdp.decide(PolicyEvent.ICC_RECEIVE, event(action=f"A{i}"))
        assert len(pdp._cache) <= 4

    def test_cache_key_canonicalizes_set_order(self):
        a = event(
            extras=frozenset({Resource.LOCATION, Resource.SMS}),
            sender_permissions=frozenset({"p.B", "p.A"}),
        )
        b = event(
            extras=frozenset({Resource.SMS, Resource.LOCATION}),
            sender_permissions=frozenset({"p.A", "p.B"}),
        )
        assert cache_key(PolicyEvent.ICC_RECEIVE, a) == cache_key(
            PolicyEvent.ICC_RECEIVE, b
        )
        assert cache_key(PolicyEvent.ICC_RECEIVE, a) != cache_key(
            PolicyEvent.ICC_SEND, a
        )


class TestBoundedDecisionLog:
    def test_log_window_bounds_memory(self):
        pdp = CompiledPolicyDecisionPoint([], log_window=8)
        for i in range(20):
            pdp.decide(PolicyEvent.ICC_RECEIVE, event(action=f"A{i}"))
        assert len(pdp.log) == 8
        assert pdp.log[-1].event.action == "A19"
        assert pdp.audit.summary()["decisions"] == 20
