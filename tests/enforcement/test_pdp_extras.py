"""Extra PDP coverage: prompt formatting and decision logging."""

from repro.android.resources import Resource
from repro.core.policy import ECAPolicy, IccEvent, PolicyAction, PolicyEvent
from repro.enforcement.pdp import (
    Decision,
    PolicyDecisionPoint,
    format_prompt,
)


def make_policy(action=PolicyAction.PROMPT):
    return ECAPolicy(
        event=PolicyEvent.ICC_RECEIVE,
        vulnerability="service_launch",
        receiver="a/Victim",
        extras_any=frozenset({Resource.LOCATION}),
        action=action,
        description="Every Intent delivering LOCATION to a/Victim needs approval.",
    )


def make_event():
    return IccEvent(
        sender="evil/Thief",
        receiver="a/Victim",
        action="go",
        extras=frozenset({Resource.LOCATION}),
    )


class TestPromptFormatting:
    def test_contains_threat_and_event_parameters(self):
        text = format_prompt(make_policy(), make_event())
        assert "service_launch" in text
        assert "evil/Thief" in text
        assert "a/Victim" in text
        assert "LOCATION" in text
        assert "Allow this operation?" in text

    def test_unresolved_receiver_rendered(self):
        event = IccEvent(sender="a/S", receiver=None)
        text = format_prompt(make_policy(), event)
        assert "(unresolved)" in text


class TestDecisionLogging:
    def test_deny_policy_skips_prompt(self):
        pdp = PolicyDecisionPoint([make_policy(action=PolicyAction.DENY)])
        decision = pdp.decide(PolicyEvent.ICC_RECEIVE, make_event())
        assert decision is Decision.DENY
        assert not pdp.log[-1].prompted

    def test_first_matching_policy_wins(self):
        deny = make_policy(action=PolicyAction.DENY)
        prompt = make_policy(action=PolicyAction.PROMPT)
        pdp = PolicyDecisionPoint(
            [deny, prompt], prompt_callback=lambda p, e: True
        )
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, make_event()) is Decision.DENY

    def test_log_records_policy_reference(self):
        policy = make_policy()
        pdp = PolicyDecisionPoint([policy])
        pdp.decide(PolicyEvent.ICC_RECEIVE, make_event())
        assert pdp.log[-1].policy is policy

    def test_allow_logged_without_policy(self):
        pdp = PolicyDecisionPoint([make_policy()])
        event = IccEvent(sender="x/Y", receiver="other/Cmp")
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.ALLOW
        assert pdp.log[-1].policy is None

    def test_add_policy_dynamic(self):
        pdp = PolicyDecisionPoint([])
        event = make_event()
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.ALLOW
        pdp.add_policy(make_policy(action=PolicyAction.DENY))
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.DENY

    def test_bounded_log_window(self):
        pdp = PolicyDecisionPoint([], log_window=4)
        for i in range(10):
            pdp.decide(
                PolicyEvent.ICC_RECEIVE,
                IccEvent(sender="x/Y", receiver="z/W", action=f"A{i}"),
            )
        assert len(pdp.log) == 4
        assert pdp.log[-1].event.action == "A9"
        # The audit trail keeps the complete count.
        assert pdp.audit.summary()["decisions"] == 10


class TestPartialEvents:
    def test_matches_tolerates_none_action(self):
        """Events built outside the PEP may carry ``action=None``; a
        policy conditioned on the intent action simply does not fire."""
        policy = ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="service_launch",
            receiver="a/Victim",
            intent_action="go",
            action=PolicyAction.DENY,
        )
        event = IccEvent(sender="x/Y", receiver="a/Victim", action=None)
        assert policy.matches(PolicyEvent.ICC_RECEIVE, event) is False

    def test_matches_tolerates_none_collections(self):
        """extras / sender_permissions forced to None must not raise."""
        policy = make_policy(action=PolicyAction.DENY)
        perm_policy = ECAPolicy(
            event=PolicyEvent.ICC_RECEIVE,
            vulnerability="privilege_escalation",
            receiver="a/Victim",
            sender_lacks_permission="perm.X",
            action=PolicyAction.DENY,
        )
        event = IccEvent(
            sender="x/Y",
            receiver="a/Victim",
            action="go",
            extras=None,
            sender_permissions=None,
        )
        assert policy.matches(PolicyEvent.ICC_RECEIVE, event) is False
        # Absent permissions: the sender cannot prove it holds perm.X.
        assert perm_policy.matches(PolicyEvent.ICC_RECEIVE, event) is True

    def test_pdp_decides_on_partial_event(self):
        pdp = PolicyDecisionPoint([make_policy(action=PolicyAction.DENY)])
        event = IccEvent(sender="x/Y", receiver="a/Victim", action=None)
        assert pdp.decide(PolicyEvent.ICC_RECEIVE, event) is Decision.ALLOW
