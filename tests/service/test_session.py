"""Unit tests for the warm per-device session layer."""

import json

import pytest

from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core import serialize
from repro.core.separ import Separ
from repro.service.protocol import ProtocolError
from repro.service.session import (
    DeviceSession,
    SessionConfig,
    cold_analysis,
    findings_bundle,
)
from repro.statics import extract_app

CONFIG = SessionConfig(scenarios_per_signature=2)


@pytest.fixture(scope="module")
def apps():
    return [
        extract_app(a)
        for a in (build_app1(), build_app2(), build_malicious_app())
    ]


@pytest.fixture(scope="module")
def app_dicts(apps):
    return {a.package: serialize.app_to_dict(a) for a in apps}


def canon(data):
    return json.dumps(data, sort_keys=True)


class TestMutations:
    def test_install_returns_detection_delta(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        result = session.install(app_dicts[apps[0].package])
        assert result["installed"] == [apps[0].package]
        assert result["synthesis"] == "deferred"
        assert any(result["delta"]["added"].values())

    def test_double_install_conflicts(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        session.install(app_dicts[apps[0].package])
        with pytest.raises(ProtocolError) as exc:
            session.install(app_dicts[apps[0].package])
        assert exc.value.kind == "conflict"

    def test_uninstall_unknown_package(self):
        session = DeviceSession("d", config=CONFIG)
        with pytest.raises(ProtocolError) as exc:
            session.uninstall("no.such.app")
        assert exc.value.kind == "not_found"

    def test_update_requires_installed_package(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        with pytest.raises(ProtocolError) as exc:
            session.update(app_dicts[apps[0].package])
        assert exc.value.kind == "not_found"

    def test_uninstall_reverses_install_delta(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        added = session.install(app_dicts[apps[0].package])["delta"]["added"]
        removed = session.uninstall(apps[0].package)["delta"]["removed"]
        assert added == removed
        assert session.packages() == []

    def test_bad_app_payload_is_bad_request(self):
        session = DeviceSession("d", config=CONFIG)
        with pytest.raises(ProtocolError) as exc:
            session.install({"not": "an app"})
        assert exc.value.kind == "bad_request"
        with pytest.raises(ProtocolError) as exc:
            session.install("nope")
        assert exc.value.kind == "bad_request"


class TestLazySynthesis:
    def test_mutation_burst_pays_one_synthesis(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        for app in apps:
            session.install(app_dicts[app.package])
        assert session.syntheses == 0  # nothing solved yet
        session.analyze()
        assert session.syntheses == 1
        session.analyze()  # clean state: no new synthesis, no new lookup
        assert session.syntheses == 1
        assert session.warm_lookups == 1

    def test_recomposition_hits_warm_cache(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        for app in apps[:2]:
            session.install(app_dicts[app.package])
        session.analyze()
        session.install(app_dicts[apps[2].package])
        session.analyze()
        assert session.syntheses == 2
        # Back to a composition we have seen: served from the cache.
        session.uninstall(apps[2].package)
        session.analyze()
        assert session.syntheses == 2
        assert session.warm_hits == 1
        assert 0.0 < session.warm_hit_rate < 1.0

    def test_policies_refresh_through_pdp_invalidation(
        self, app_dicts, apps
    ):
        session = DeviceSession("d", config=CONFIG)
        session.install(app_dicts[apps[0].package])
        session.install(app_dicts[apps[1].package])
        first = session.policies()["policies"]
        assert [serialize.policy_to_dict(p) for p in session.pdp.policies] == first
        session.uninstall(apps[1].package)
        second = session.policies()["policies"]
        assert [serialize.policy_to_dict(p) for p in session.pdp.policies] == second
        assert canon(first) != canon(second)

    def test_grant_revoke_round_trip_is_warm(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        for app in apps:
            session.install(app_dicts[app.package])
        baseline = session.analyze()
        # app2 (messenger) sends SMS through its exposed sender; revoking
        # SEND_SMS changes what the bundle analysis can exploit.
        package = apps[1].package
        permission = sorted(apps[1].uses_permissions)[0]
        session.revoke(package, permission)
        revoked = session.analyze()
        session.grant(package, permission)
        restored = session.analyze()
        assert canon(restored) == canon(baseline)
        assert canon(revoked) != canon(baseline)
        # The round trip back to the original grants is a cache hit.
        assert session.warm_hits >= 1


class TestQueries:
    def test_analyze_matches_cold_run(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        for app in apps[:2]:
            session.install(app_dicts[app.package])
        assert canon(session.analyze()) == canon(
            cold_analysis(apps[:2], CONFIG)
        )

    def test_decide_uses_current_policies(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        for app in apps[:2]:
            session.install(app_dicts[app.package])
        policies = session.policies()["policies"]
        assert policies
        target = policies[0]
        result = session.decide(
            "icc_receive",
            {
                "sender": "any.app/Comp",
                "receiver": target.get("receiver"),
                "action": target.get("intent_action"),
            },
        )
        assert result["decision"] in ("allow", "deny")
        assert result["audit"]["seq"] == 0

    def test_decide_rejects_bad_kind_and_event(self):
        session = DeviceSession("d", config=CONFIG)
        with pytest.raises(ProtocolError):
            session.decide("nonsense", {"sender": "a/b"})
        with pytest.raises(ProtocolError):
            session.decide("icc_send", {"receiver": "a/b"})
        with pytest.raises(ProtocolError):
            session.decide(
                "icc_send", {"sender": "a/b", "extras": ["NOT_A_RESOURCE"]}
            )

    def test_status_reports_warm_state(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        session.install(app_dicts[apps[0].package])
        session.analyze()
        status = session.status()
        assert status["installed"] == [apps[0].package]
        assert status["dirty"] is False
        assert status["syntheses"] == 1
        assert status["solver"]["num_vars"] > 0

    def test_audit_trail_accumulates(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        session.install(app_dicts[apps[0].package])
        for _ in range(3):
            session.decide("icc_send", {"sender": "a/b"})
        trail = session.audit_trail()
        assert [r["seq"] for r in trail["records"]] == [0, 1, 2]
        assert trail["summary"]["decisions"] == 3


class TestHandleDispatch:
    def test_handle_routes_every_device_op(self, app_dicts, apps):
        session = DeviceSession("d", config=CONFIG)
        pkg = apps[0].package
        assert session.handle(
            {"op": "install", "app": app_dicts[pkg]}
        )["installed"] == [pkg]
        assert "scenarios" in session.handle({"op": "analyze"})
        assert "policies" in session.handle({"op": "policies"})
        assert "records" in session.handle({"op": "audit"})
        assert session.handle({"op": "status"})["device"] == "d"
        assert session.handle(
            {"op": "uninstall", "package": pkg}
        )["installed"] == []

    def test_handle_validates_operands(self):
        session = DeviceSession("d", config=CONFIG)
        with pytest.raises(ProtocolError) as exc:
            session.handle({"op": "uninstall"})
        assert exc.value.kind == "bad_request"
        with pytest.raises(ProtocolError) as exc:
            session.handle({"op": "grant", "package": "p"})
        assert exc.value.kind == "bad_request"


class TestColdComparator:
    def test_cold_analysis_equals_separ_facade(self, apps):
        """The differential comparator must itself match the reference
        facade -- otherwise 'byte-identical to a cold run' proves
        nothing."""
        from repro.core.model import BundleModel

        bundle = BundleModel(apps=sorted(apps, key=lambda a: a.package))
        separ = Separ(
            scenarios_per_signature=CONFIG.scenarios_per_signature,
            shared_encoding=CONFIG.shared_encoding,
            solver_backend=CONFIG.solver_backend,
        )
        assert canon(cold_analysis(apps, CONFIG)) == canon(
            findings_bundle(separ.analyze_bundle(bundle))
        )

    def test_cold_analysis_order_independent(self, apps):
        assert canon(cold_analysis(apps, CONFIG)) == canon(
            cold_analysis(list(reversed(apps)), CONFIG)
        )
