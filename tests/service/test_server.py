"""Protocol + daemon tests: framing, sharding, metrics, shutdown."""

import json
import socket
import urllib.request

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.core import serialize
from repro.obs import enable_metrics
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError
from repro.service.server import PolicyService, ServerConfig
from repro.service.session import SessionConfig
from repro.statics import extract_app

SESSION = SessionConfig(scenarios_per_signature=2)


@pytest.fixture(scope="module")
def app_dicts():
    apps = [extract_app(a) for a in (build_app1(), build_app2())]
    return {a.package: serialize.app_to_dict(a) for a in apps}


def make_config(**overrides):
    overrides.setdefault("session", SESSION)
    overrides.setdefault("heartbeat_seconds", 0.1)
    return ServerConfig(**overrides)


class TestDecodeRequest:
    def test_valid_request_passes_through(self):
        request = protocol.decode_request(
            b'{"id": 1, "op": "analyze", "device": "d"}\n'
        )
        assert request["op"] == "analyze"

    def test_invalid_json_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b"{nope\n")
        assert exc.value.kind == "bad_request"

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b"[1, 2]\n")
        assert exc.value.kind == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b'{"op": "explode"}\n')
        assert exc.value.kind == "unknown_op"

    def test_device_op_requires_device(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b'{"op": "analyze"}\n')
        assert exc.value.kind == "bad_request"

    def test_oversized_line_rejected(self):
        line = b'{"op": "ping", "pad": "' + b"x" * protocol.MAX_LINE_BYTES
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.kind == "line_too_long"

    def test_unknown_error_kind_coerced_to_internal(self):
        assert ProtocolError("made_up", "m").kind == "internal"
        assert (
            protocol.error_response(None, "made_up", "m")["error"]["kind"]
            == "internal"
        )


class TestDaemonTcp:
    def test_request_cycle_and_shutdown(self, app_dicts, tmp_path):
        enable_metrics()
        ready = tmp_path / "ready.json"
        service = PolicyService(
            make_config(metrics_port=0, ready_file=str(ready))
        )
        with service.background():
            host, port = service.address
            # Ready file announces the bound address before we connect.
            announced = json.loads(ready.read_text())
            assert announced["address"] == [host, port]
            with ServiceClient(host, port) as client:
                pong = client.ping()
                assert pong == {
                    "pong": True,
                    "version": protocol.PROTOCOL_VERSION,
                }
                for app in app_dicts.values():
                    client.install("dev1", app)
                findings = client.analyze("dev1")
                assert sorted(app_dicts) == findings["apps"]
                assert client.policies("dev1")

                # Per-device sharding: a second device has its own state.
                first = next(iter(app_dicts.values()))
                client.install("dev2", first)
                assert client.analyze("dev2")["apps"] == [first["package"]]
                status = client.status()
                assert sorted(status["sessions"]) == ["dev1", "dev2"]
                assert status["sessions"]["dev1"]["syntheses"] >= 1

                # Metrics endpoint serves Prometheus text for the daemon.
                url = "http://{}:{}/metrics".format(*service.metrics_address)
                body = urllib.request.urlopen(url).read().decode("utf-8")
                assert "repro_service_requests_total" in body
                assert "repro_service_session_dev1_apps" in body
                assert "repro_service_sessions" in body

                assert client.shutdown() == {"stopping": True}
        # Context manager returned: thread joined, files removed.
        assert service._thread is None
        assert not ready.exists()

    def test_error_responses_keep_connection_open(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as exc:
                    client.uninstall("dev1", "no.such.app")
                assert exc.value.kind == "not_found"
                with pytest.raises(ServiceError) as exc:
                    client.request("install", device="dev1")
                assert exc.value.kind == "bad_request"
                # The connection survived both errors.
                assert client.ping()["pong"] is True

    def test_malformed_json_answered_with_null_id(self):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with socket.create_connection((host, port), timeout=30) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"{broken\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["id"] is None
                assert response["error"]["kind"] == "bad_request"
                # Blank lines are skipped, connection still serves.
                handle.write(b"\n")
                handle.write(b'{"id": 7, "op": "ping"}\n')
                handle.flush()
                response = json.loads(handle.readline())
                assert response["id"] == 7
                assert response["result"]["pong"] is True

    def test_mutation_burst_batches_into_one_synthesis(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                for app in app_dicts.values():
                    result = client.install("dev1", app)
                    assert result["synthesis"] == "deferred"
                client.analyze("dev1")
                assert client.status("dev1")["syntheses"] == 1


class TestDaemonUnixSocket:
    def test_serves_over_unix_socket(self, app_dicts, tmp_path):
        path = str(tmp_path / "serve.sock")
        service = PolicyService(make_config(socket_path=path))
        with service.background():
            with ServiceClient(socket_path=path) as client:
                assert client.ping()["pong"] is True
                first = next(iter(app_dicts.values()))
                client.install("dev1", first)
                assert client.analyze("dev1")["apps"] == [first["package"]]
        # Socket file removed on shutdown.
        import os

        assert not os.path.exists(path)
