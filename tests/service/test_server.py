"""Protocol + daemon tests: framing, sharding, metrics, shutdown."""

import json
import socket
import urllib.request

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.core import serialize
from repro.obs import enable_metrics
from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import ProtocolError
from repro.service.server import PolicyService, ServerConfig
from repro.service.session import SessionConfig
from repro.statics import extract_app

SESSION = SessionConfig(scenarios_per_signature=2)


@pytest.fixture(scope="module")
def app_dicts():
    apps = [extract_app(a) for a in (build_app1(), build_app2())]
    return {a.package: serialize.app_to_dict(a) for a in apps}


def make_config(**overrides):
    overrides.setdefault("session", SESSION)
    overrides.setdefault("heartbeat_seconds", 0.1)
    return ServerConfig(**overrides)


class TestDecodeRequest:
    def test_valid_request_passes_through(self):
        request = protocol.decode_request(
            b'{"id": 1, "op": "analyze", "device": "d"}\n'
        )
        assert request["op"] == "analyze"

    def test_invalid_json_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b"{nope\n")
        assert exc.value.kind == "bad_request"

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b"[1, 2]\n")
        assert exc.value.kind == "bad_request"

    def test_unknown_op(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b'{"op": "explode"}\n')
        assert exc.value.kind == "unknown_op"

    def test_device_op_requires_device(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b'{"op": "analyze"}\n')
        assert exc.value.kind == "bad_request"

    def test_oversized_line_rejected(self):
        line = b'{"op": "ping", "pad": "' + b"x" * protocol.MAX_LINE_BYTES
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.kind == "line_too_long"

    def test_unknown_error_kind_coerced_to_internal(self):
        assert ProtocolError("made_up", "m").kind == "internal"
        assert (
            protocol.error_response(None, "made_up", "m")["error"]["kind"]
            == "internal"
        )


class TestDaemonTcp:
    def test_request_cycle_and_shutdown(self, app_dicts, tmp_path):
        enable_metrics()
        ready = tmp_path / "ready.json"
        service = PolicyService(
            make_config(metrics_port=0, ready_file=str(ready))
        )
        with service.background():
            host, port = service.address
            # Ready file announces the bound address before we connect.
            announced = json.loads(ready.read_text())
            assert announced["address"] == [host, port]
            with ServiceClient(host, port) as client:
                pong = client.ping()
                assert pong == {
                    "pong": True,
                    "version": protocol.PROTOCOL_VERSION,
                }
                for app in app_dicts.values():
                    client.install("dev1", app)
                findings = client.analyze("dev1")
                assert sorted(app_dicts) == findings["apps"]
                assert client.policies("dev1")

                # Per-device sharding: a second device has its own state.
                first = next(iter(app_dicts.values()))
                client.install("dev2", first)
                assert client.analyze("dev2")["apps"] == [first["package"]]
                status = client.status()
                assert sorted(status["sessions"]) == ["dev1", "dev2"]
                assert status["sessions"]["dev1"]["syntheses"] >= 1

                # Metrics endpoint serves Prometheus text for the daemon.
                url = "http://{}:{}/metrics".format(*service.metrics_address)
                body = urllib.request.urlopen(url).read().decode("utf-8")
                assert "repro_service_requests_total" in body
                assert "repro_service_session_dev1_apps" in body
                assert "repro_service_sessions" in body

                assert client.shutdown() == {"stopping": True}
        # Context manager returned: thread joined, files removed.
        assert service._thread is None
        assert not ready.exists()

    def test_error_responses_keep_connection_open(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as exc:
                    client.uninstall("dev1", "no.such.app")
                assert exc.value.kind == "not_found"
                with pytest.raises(ServiceError) as exc:
                    client.request("install", device="dev1")
                assert exc.value.kind == "bad_request"
                # The connection survived both errors.
                assert client.ping()["pong"] is True

    def test_malformed_json_answered_with_null_id(self):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with socket.create_connection((host, port), timeout=30) as sock:
                handle = sock.makefile("rwb")
                handle.write(b"{broken\n")
                handle.flush()
                response = json.loads(handle.readline())
                assert response["ok"] is False
                assert response["id"] is None
                assert response["error"]["kind"] == "bad_request"
                # Blank lines are skipped, connection still serves.
                handle.write(b"\n")
                handle.write(b'{"id": 7, "op": "ping"}\n')
                handle.flush()
                response = json.loads(handle.readline())
                assert response["id"] == 7
                assert response["result"]["pong"] is True

    def test_mutation_burst_batches_into_one_synthesis(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                for app in app_dicts.values():
                    result = client.install("dev1", app)
                    assert result["synthesis"] == "deferred"
                client.analyze("dev1")
                assert client.status("dev1")["syntheses"] == 1


class TestTracingAndCost:
    def test_trace_id_minted_when_absent_echoed_when_given(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                client.ping()
                minted = client.last_trace_id
                assert minted  # server minted one for the bare request
                client.ping()
                assert client.last_trace_id != minted  # fresh per request
                client.request("ping", trace_id="deadbeef00000001")
                assert client.last_trace_id == "deadbeef00000001"
                # Non-device ops carry no cost object.
                assert client.last_cost is None

    def test_blank_trace_id_is_bad_request(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                with pytest.raises(ServiceError) as exc:
                    client.request("ping", trace_id="")
                assert exc.value.kind == "bad_request"

    def test_device_ops_cost_reconciles_with_prometheus(self, app_dicts):
        """The response's cost object and the scraped repro_cost_* series
        are two views of one ledger: per-trace totals must match."""
        service = PolicyService(make_config(metrics_port=0))
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                tid = "feedc0de00000001"
                for app in app_dicts.values():
                    client.request(
                        "install", device="dev1", app=app, trace_id=tid
                    )
                    assert client.last_trace_id == tid
                    assert client.last_cost is not None
                client.request("analyze", device="dev1", trace_id=tid)
                cost = client.last_cost
                assert cost["wall_seconds"] > 0
                assert cost["cache_misses"] >= 1  # cold synthesis attributed
                assert cost["clauses_added"] > 0

                url = "http://{}:{}/metrics".format(*service.metrics_address)
                body = urllib.request.urlopen(url).read().decode("utf-8")
                for meter in ("wall_seconds", "clauses_added"):
                    scraped = sum(
                        float(line.rsplit(" ", 1)[1])
                        for line in body.splitlines()
                        if line.startswith(f"repro_cost_{meter}_total{{")
                        and f'trace_id="{tid}"' in line
                    )
                    assert scraped == pytest.approx(cost[meter]), meter

    def test_warm_repeat_charges_cache_hit_not_solver_work(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                packages = list(app_dicts)
                for app in app_dicts.values():
                    client.install("dev1", app)
                client.analyze("dev1")
                # Leave the composition and come back: the warm cache
                # answers the re-analysis without any solver work.
                client.uninstall("dev1", packages[1])
                client.analyze("dev1")
                client.install("dev1", app_dicts[packages[1]])
                client.request("analyze", device="dev1", trace_id="aa01")
                warm = client.last_cost
                assert warm["cache_hits"] >= 1
                assert warm["clauses_added"] == 0  # no re-synthesis

    def test_healthz_and_extended_status(self, app_dicts):
        service = PolicyService(make_config())
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                health = client.healthz()
                assert health["healthy"] is True
                assert health["sessions"] == 0
                assert health["version"] == protocol.PROTOCOL_VERSION

                first = next(iter(app_dicts.values()))
                client.install("dev1", first)
                health = client.healthz()
                assert health["sessions"] == 1
                assert health["uptime_seconds"] > 0
                assert health["queue_depth"] == 0
                assert health["inflight"] == 0
                assert health["stalled_devices"] == []

                status = client.status()
                assert status["queue_depths"] == {"dev1": 0}
                assert status["inflight_ages"]["dev1"] is None  # idle
                assert status["cache_entries"] >= 0
                # The install request itself was charged to the ledger.
                top = status["top_costs"]
                assert top and top[0]["device"] == "dev1"
                assert top[0]["wall_seconds"] > 0


class TestDaemonUnixSocket:
    def test_serves_over_unix_socket(self, app_dicts, tmp_path):
        path = str(tmp_path / "serve.sock")
        service = PolicyService(make_config(socket_path=path))
        with service.background():
            with ServiceClient(socket_path=path) as client:
                assert client.ping()["pong"] is True
                first = next(iter(app_dicts.values()))
                client.install("dev1", first)
                assert client.analyze("dev1")["apps"] == [first["package"]]
        # Socket file removed on shutdown.
        import os

        assert not os.path.exists(path)
