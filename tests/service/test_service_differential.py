"""Differential suite: warm service answers vs cold full-bundle runs.

Replays seeded install/update/uninstall/grant/revoke streams through live
sessions and asserts every synthesis-backed answer -- scenarios, policy
sets, vulnerability findings -- is byte-identical to a fresh cold run of
the same composition, across both solver backends and both PDP backends.
Audit sequences are compared the same way: the session's decide stream
must equal a fresh PDP replaying the identical events under the same
policies.  One default-configuration stream also goes through the real
socket daemon, so the wire path is covered too.
"""

import json
import random

import pytest

from repro.workloads.corpus import CorpusConfig, CorpusGenerator
from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core import serialize
from repro.enforcement import AuditLog, make_pdp
from repro.enforcement.pdp import deny_all_prompts
from repro.service.client import ServiceClient
from repro.service.server import PolicyService, ServerConfig
from repro.service.session import (
    DeviceSession,
    SessionConfig,
    cold_analysis,
)
from repro.statics import extract_app


def canon(data):
    return json.dumps(data, sort_keys=True)


@pytest.fixture(scope="module")
def apps():
    return [
        extract_app(a)
        for a in (build_app1(), build_app2(), build_malicious_app())
    ]


@pytest.fixture(scope="module")
def corpus_apps():
    generator = CorpusGenerator(CorpusConfig(seed=11, scale=0.05))
    apks = generator.generate()
    vulnerable = {
        pkg
        for group in (
            generator.ledger.hijack_apps,
            generator.ledger.launch_apps,
            generator.ledger.leak_apps,
            generator.ledger.escalation_apps,
        )
        for pkg in group
    }
    picked = [a for a in apks if a.package in vulnerable][:3]
    picked += [a for a in apks if a.package not in vulnerable][:2]
    return [extract_app(a) for a in picked]


def seeded_stream(apps, seed, events=12):
    """A deterministic install/uninstall/update/grant/revoke stream that
    keeps at least one app resident and never issues an invalid op."""
    rng = random.Random(seed)
    installed = {}
    stream = []
    for app in apps[:2]:
        installed[app.package] = app
        stream.append(("install", app))
    while len(stream) < events:
        candidates = ["install", "uninstall", "update", "toggle"]
        op = rng.choice(candidates)
        if op == "install":
            available = [a for a in apps if a.package not in installed]
            if not available:
                continue
            app = rng.choice(available)
            installed[app.package] = app
            stream.append(("install", app))
        elif op == "uninstall":
            if len(installed) <= 1:
                continue
            package = rng.choice(sorted(installed))
            del installed[package]
            stream.append(("uninstall", package))
        elif op == "update":
            if not installed:
                continue
            package = rng.choice(sorted(installed))
            stream.append(("update", installed[package]))
        else:  # toggle one permission off and back on
            permed = [
                a for a in installed.values() if a.uses_permissions
            ]
            if not permed:
                continue
            app = rng.choice(permed)
            permission = rng.choice(sorted(app.uses_permissions))
            stream.append(("revoke", (app.package, permission)))
            stream.append(("grant", (app.package, permission)))
    return stream


def apply_event(session, op, payload):
    if op == "install":
        session.install(serialize.app_to_dict(payload))
    elif op == "uninstall":
        session.uninstall(payload)
    elif op == "update":
        session.update(serialize.app_to_dict(payload))
    elif op == "revoke":
        session.revoke(*payload)
    elif op == "grant":
        session.grant(*payload)
    else:  # pragma: no cover - stream generator bug
        raise AssertionError(op)


def assert_stream_differential(session, stream, config):
    """Replay a stream; after every event the warm answer must equal the
    cold comparator for the session's current effective composition."""
    for op, payload in stream:
        apply_event(session, op, payload)
        warm = session.analyze()
        cold = cold_analysis(session.current_bundle().apps, config)
        assert canon(warm) == canon(cold), (
            f"divergence after {op} "
            f"(installed={session.packages()})"
        )


CONFIG_MATRIX = [
    pytest.param(solver, pdp, id=f"{solver}-{pdp}")
    for solver in ("fast", "reference")
    for pdp in ("compiled", "linear")
]


class TestStreamDifferential:
    @pytest.mark.parametrize("solver,pdp", CONFIG_MATRIX)
    def test_running_example_stream(self, apps, solver, pdp):
        config = SessionConfig(
            scenarios_per_signature=2, solver_backend=solver, pdp_backend=pdp
        )
        session = DeviceSession("diff", config=config)
        stream = seeded_stream(apps, seed=7, events=10)
        assert_stream_differential(session, stream, config)
        # The stream revisited compositions, so warmth actually engaged.
        assert session.warm_hits >= 1
        assert session.syntheses < session.warm_lookups

    def test_corpus_stream_default_config(self, corpus_apps):
        config = SessionConfig(scenarios_per_signature=2)
        session = DeviceSession("corpus", config=config)
        stream = seeded_stream(corpus_apps, seed=23, events=8)
        assert_stream_differential(session, stream, config)

    @pytest.mark.parametrize("solver,pdp", CONFIG_MATRIX)
    def test_policy_sets_identical(self, apps, solver, pdp):
        config = SessionConfig(
            scenarios_per_signature=2, solver_backend=solver, pdp_backend=pdp
        )
        session = DeviceSession("pol", config=config)
        for app in apps:
            session.install(serialize.app_to_dict(app))
        warm = session.policies()["policies"]
        cold = cold_analysis(apps, config)["policies"]
        assert canon(warm) == canon(cold)


class TestBackendAgreement:
    def test_all_four_combos_agree_on_findings(self, apps):
        """Solver and PDP backends are performance knobs, never result
        knobs: every combo produces one identical findings bundle."""
        bundles = set()
        for solver in ("fast", "reference"):
            for pdp in ("compiled", "linear"):
                config = SessionConfig(
                    scenarios_per_signature=2,
                    solver_backend=solver,
                    pdp_backend=pdp,
                )
                session = DeviceSession(f"{solver}-{pdp}", config=config)
                for app in apps:
                    session.install(serialize.app_to_dict(app))
                bundles.add(canon(session.analyze()))
        assert len(bundles) == 1


class TestAuditDifferential:
    def decide_events(self, policies):
        """Deterministic decide traffic touching matched and unmatched
        paths for the given policy set."""
        events = [("icc_send", {"sender": "probe.app/Main"})]
        for policy in policies[:4]:
            events.append(
                (
                    policy["event"],
                    {
                        "sender": policy.get("sender") or "probe.app/Main",
                        "receiver": policy.get("receiver"),
                        "action": policy.get("intent_action"),
                        "extras": policy.get("extras_any", [])[:1],
                    },
                )
            )
        return events

    @pytest.mark.parametrize("pdp_backend", ["compiled", "linear"])
    def test_session_audit_equals_cold_pdp_replay(self, apps, pdp_backend):
        config = SessionConfig(
            scenarios_per_signature=2, pdp_backend=pdp_backend
        )
        session = DeviceSession("audit", config=config)
        for app in apps:
            session.install(serialize.app_to_dict(app))
        events = self.decide_events(session.policies()["policies"])
        for kind, event in events:
            session.decide(kind, event)
        warm_trail = session.audit_trail()

        # Cold replay: a fresh PDP with the cold run's policies sees the
        # exact same events; its audit log must match record for record.
        cold = cold_analysis(apps, config)
        audit = AuditLog()
        pdp = make_pdp(
            [serialize.policy_from_dict(p) for p in cold["policies"]],
            backend=pdp_backend,
            prompt_callback=deny_all_prompts,
            audit=audit,
        )
        for kind, event in events:
            kind_parsed, icc = DeviceSession._parse_event(kind, event)
            pdp.decide(kind_parsed, icc)
        cold_trail = {
            "records": [r.to_dict() for r in audit.iter_all()],
            "summary": audit.summary(),
        }
        assert canon(warm_trail) == canon(cold_trail)
        # The traffic exercised at least one deny and one fallthrough.
        verdicts = {r["verdict"] for r in warm_trail["records"]}
        assert "deny" in verdicts or "allow" in verdicts


class TestSocketDifferential:
    def test_stream_over_the_wire_matches_cold_runs(self, apps):
        """The default combo end-to-end: same stream through the real
        daemon, every response compared against the cold comparator."""
        config = SessionConfig(scenarios_per_signature=2)
        service = PolicyService(
            ServerConfig(session=config, heartbeat_seconds=0.1)
        )
        stream = seeded_stream(apps, seed=41, events=8)
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                for op, payload in stream:
                    if op == "install":
                        client.install(
                            "dev", serialize.app_to_dict(payload)
                        )
                    elif op == "uninstall":
                        client.uninstall("dev", payload)
                    elif op == "update":
                        client.update(
                            "dev", serialize.app_to_dict(payload)
                        )
                    elif op == "revoke":
                        client.revoke("dev", *payload)
                    elif op == "grant":
                        client.grant("dev", *payload)
                    warm = client.analyze("dev")
                    cold = cold_analysis(
                        service.sessions["dev"].current_bundle().apps,
                        config,
                    )
                    assert canon(warm) == canon(cold), (
                        f"socket divergence after {op}"
                    )
                status = client.status("dev")
                assert status["warm_hits"] >= 1
