"""Warm-session differential coverage for the scaled threat model.

The PR-9 signatures (permission re-delegation chains, provider leakage,
dynamic-receiver hijack, app collusion) reach the long-running service
through the same incremental path as the original four.  These tests
replay install/uninstall streams over an adversarial-corpus bundle and
the fixed threat cases, asserting after every event that the warm
answer -- scenarios, policies, detection report -- is byte-identical to
a cold full-bundle rerun, and that multi-app findings appear and vanish
exactly when their participating apps do."""

import json

import pytest

from repro.benchsuite.threatcases import all_threat_cases
from repro.core import serialize
from repro.core.attack_generation import (
    SCALED_SIGNATURES,
    AdversarialCorpusConfig,
    AdversarialCorpusGenerator,
)
from repro.service.session import (
    DeviceSession,
    SessionConfig,
    cold_analysis,
)
from repro.statics import extract_app

SEED = 20160809


def canon(data):
    return json.dumps(data, sort_keys=True)


@pytest.fixture(scope="module")
def adversarial():
    """One extracted adversarial bundle plus its ground-truth manifest."""
    config = AdversarialCorpusConfig(
        seed=SEED, bundles=1, apps_per_bundle=6
    )
    raw, manifest = AdversarialCorpusGenerator(config).generate()
    apps = [
        extract_app(apk, handle_dynamic_receivers=True) for apk in raw[0]
    ]
    return apps, manifest


def assert_warm_equals_cold(session, config):
    warm = session.analyze()
    cold = cold_analysis(session.current_bundle().apps, config)
    assert canon(warm) == canon(cold), session.packages()
    return warm


class TestAdversarialStream:
    def test_install_stream_tracks_cold_runs(self, adversarial):
        apps, manifest = adversarial
        config = SessionConfig(scenarios_per_signature=4)
        session = DeviceSession("adv", config=config)
        for app in apps:
            session.install(serialize.app_to_dict(app))
            assert_warm_equals_cold(session, config)
        warm = session.analyze()
        found = {s["vulnerability"] for s in warm["scenarios"]}
        assert set(SCALED_SIGNATURES) <= found
        # Fully assembled, the session's findings match the manifest.
        for name in SCALED_SIGNATURES:
            flagged = {
                comp.split("/", 1)[0]
                for comp in warm["detection"]["findings"].get(name, [])
            }
            assert flagged == manifest.expected(name, 0), name

    def test_uninstall_retracts_collusion_and_reinstall_restores(
        self, adversarial
    ):
        apps, manifest = adversarial
        config = SessionConfig(scenarios_per_signature=4)
        session = DeviceSession("adv-retract", config=config)
        for app in apps:
            session.install(serialize.app_to_dict(app))
        session.analyze()  # warm the full composition before mutating
        colluders = sorted(manifest.expected("app_collusion", 0))
        assert colluders, "manifest must plant a collusion attack"
        victim = colluders[0]

        session.uninstall(victim)
        warm = assert_warm_equals_cold(session, config)
        flagged = {
            comp.split("/", 1)[0]
            for comp in warm["detection"]["findings"].get(
                "app_collusion", []
            )
        }
        assert victim not in flagged

        by_package = {app.package: app for app in apps}
        session.install(serialize.app_to_dict(by_package[victim]))
        warm = assert_warm_equals_cold(session, config)
        flagged = {
            comp.split("/", 1)[0]
            for comp in warm["detection"]["findings"].get(
                "app_collusion", []
            )
        }
        assert flagged == manifest.expected("app_collusion", 0)
        # The composition was revisited, so warmth actually engaged.
        assert session.warm_hits >= 1

    @pytest.mark.parametrize("solver", ["fast", "reference"])
    def test_backends_agree_warm(self, adversarial, solver):
        apps, _ = adversarial
        config = SessionConfig(
            scenarios_per_signature=4, solver_backend=solver
        )
        session = DeviceSession(f"adv-{solver}", config=config)
        for app in apps:
            session.install(serialize.app_to_dict(app))
        assert_warm_equals_cold(session, config)


class TestThreatCaseStreams:
    """Each fixed threat case through a warm session: install app by
    app (warm == cold throughout), then peel the last app off again."""

    @pytest.mark.parametrize(
        "case",
        [c for c in all_threat_cases() if not c.is_decoy],
        ids=lambda c: c.name,
    )
    def test_incremental_install_then_uninstall(self, case):
        config = SessionConfig(scenarios_per_signature=4)
        session = DeviceSession(case.name, config=config)
        apps = [
            extract_app(apk, handle_dynamic_receivers=True)
            for apk in case.apks
        ]
        for app in apps:
            session.install(serialize.app_to_dict(app))
            assert_warm_equals_cold(session, config)
        warm = session.analyze()
        flagged = {
            comp.split("/", 1)[0]
            for comp in warm["detection"]["findings"].get(
                case.signature, []
            )
        }
        assert flagged == set(case.expected_apps), case.notes

        if len(apps) > 1:
            session.uninstall(apps[-1].package)
            assert_warm_equals_cold(session, config)
