"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--scenarios", "2"]) == 0
        out = capsys.readouterr().out
        assert "bundle: 2 apps" in out
        assert "policy (" in out


class TestCorpusAndAnalyze:
    def test_corpus_then_analyze(self, tmp_path, capsys):
        out_dir = tmp_path / "models"
        assert main(["corpus", "--scale", "0.005", "-o", str(out_dir)]) == 0
        models = sorted(out_dir.glob("*.json"))
        assert models
        capsys.readouterr()

        subset = [str(p) for p in models[:10]]
        alloy_path = tmp_path / "bundle.als"
        assert main(
            ["analyze", *subset, "--scenarios", "2", "--alloy", str(alloy_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bundle:" in out
        assert alloy_path.exists()
        assert "abstract sig Component" in alloy_path.read_text()

    def test_analyze_roundtrip_consistency(self, tmp_path, capsys):
        """Saved models analyzed via the CLI agree with in-memory analysis."""
        from repro.benchsuite.running_example import build_app1, build_app2
        from repro.core import serialize
        from repro.statics import extract_bundle

        bundle = extract_bundle([build_app1(), build_app2()])
        paths = []
        for app in bundle.apps:
            path = tmp_path / f"{app.package}.json"
            path.write_text(serialize.dumps_app(app))
            paths.append(str(path))
        assert main(["analyze", *paths, "--scenarios", "4"]) == 0
        out = capsys.readouterr().out
        assert "intent_hijack" in out
        assert "service_launch" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
