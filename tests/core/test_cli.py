"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--scenarios", "2"]) == 0
        out = capsys.readouterr().out
        assert "bundle: 2 apps" in out
        assert "policy (" in out


class TestCorpusAndAnalyze:
    def test_corpus_then_analyze(self, tmp_path, capsys):
        out_dir = tmp_path / "models"
        assert main(["corpus", "--scale", "0.005", "-o", str(out_dir)]) == 0
        models = sorted(out_dir.glob("*.json"))
        assert models
        capsys.readouterr()

        subset = [str(p) for p in models[:10]]
        alloy_path = tmp_path / "bundle.als"
        assert main(
            ["analyze", *subset, "--scenarios", "2", "--alloy", str(alloy_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "bundle:" in out
        assert alloy_path.exists()
        assert "abstract sig Component" in alloy_path.read_text()

    def test_analyze_roundtrip_consistency(self, tmp_path, capsys):
        """Saved models analyzed via the CLI agree with in-memory analysis."""
        from repro.benchsuite.running_example import build_app1, build_app2
        from repro.core import serialize
        from repro.statics import extract_bundle

        bundle = extract_bundle([build_app1(), build_app2()])
        paths = []
        for app in bundle.apps:
            path = tmp_path / f"{app.package}.json"
            path.write_text(serialize.dumps_app(app))
            paths.append(str(path))
        assert main(["analyze", *paths, "--scenarios", "4"]) == 0
        out = capsys.readouterr().out
        assert "intent_hijack" in out
        assert "service_launch" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_every_subcommand_has_help(self, capsys):
        for sub in ("demo", "corpus", "analyze", "pipeline", "simulate", "trace"):
            with pytest.raises(SystemExit) as excinfo:
                main([sub, "--help"])
            assert excinfo.value.code == 0
            out = capsys.readouterr().out
            assert out.startswith(f"usage: repro {sub}")
            assert "-h, --help" in out


class TestSimulate:
    def test_attack_denied_and_audited(self, tmp_path, capsys):
        audit_path = tmp_path / "audit.jsonl"
        assert main(
            ["simulate", "--scenarios", "2", "--audit", str(audit_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "denied" in out
        assert "no exfiltration" in out

        from repro.enforcement import AuditLog

        log = AuditLog.load(str(audit_path))
        assert len(log) > 0
        assert [r.seq for r in log] == list(range(len(log)))
        assert log.denials()

    def test_consenting_user_lets_data_flow(self, capsys):
        assert main(["simulate", "--scenarios", "2", "--consent"]) == 0
        out = capsys.readouterr().out
        assert "EXFILTRATED" in out or "allowed" in out


class TestTraceCommands:
    def test_pipeline_trace_then_render(self, tmp_path, capsys, monkeypatch):
        from repro.obs import METRICS_ENV, NULL_METRICS, NULL_TRACER, TRACE_ENV
        from repro.obs import NULL_COST_LEDGER, set_cost_ledger
        from repro.obs import set_metrics, set_tracer

        trace_path = tmp_path / "out.jsonl"
        report_path = tmp_path / "rr.json"
        try:
            assert main(
                [
                    "pipeline", "--scale", "0.002", "--bundle-size", "4",
                    "--scenarios", "2", "--no-cache",
                    "--trace", str(trace_path), "--report", str(report_path),
                ]
            ) == 0
        finally:  # the CLI installs a global tracer/registry/ledger: restore
            set_tracer(NULL_TRACER)
            set_metrics(NULL_METRICS)
            set_cost_ledger(NULL_COST_LEDGER)
            monkeypatch.delenv(TRACE_ENV, raising=False)
            monkeypatch.delenv(METRICS_ENV, raising=False)
        out = capsys.readouterr().out
        assert "spans written" in out
        assert "cost ledger:" in out

        import json

        report = json.loads(report_path.read_text())
        # The default shared-encoding mode synthesizes whole bundles.
        for stage in (
            "pipeline.run",
            "pipeline.extract",
            "pipeline.synthesize_bundle",
        ):
            assert stage in report["spans"]
        assert "ame.apps_extracted" in report["metrics"]
        # Every span carries the run's single trace id...
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        trace_ids = {r.get("trace_id") for r in records if "span_id" in r}
        assert len(trace_ids) == 1 and None not in trace_ids
        # ...and the ledger attributed the run's work per bundle.
        assert report["cost"]
        assert all(e["trace_id"] in trace_ids for e in report["cost"])
        assert sum(e["cache_misses"] for e in report["cost"]) > 0

        assert main(["trace", str(trace_path), "--top", "5"]) == 0
        rendered = capsys.readouterr().out
        assert "pipeline.run" in rendered
        assert "span" in rendered  # hotspot table header

        # The exposition carries the same accounts as labeled series.
        assert main(["export-metrics", str(report_path)]) == 0
        exposition = capsys.readouterr().out
        assert "repro_cost_cache_misses_total{" in exposition
        assert 'trace_id="' in exposition

    def test_trace_rejects_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["trace", str(missing)]) != 0
        assert "no such" in capsys.readouterr().err.lower()


class TestTop:
    def test_top_once_renders_device_table_and_costs(self, capsys):
        from repro.benchsuite.running_example import build_app1
        from repro.core import serialize
        from repro.service import (
            PolicyService,
            ServerConfig,
            ServiceClient,
            SessionConfig,
        )
        from repro.statics import extract_app

        service = PolicyService(
            ServerConfig(session=SessionConfig(scenarios_per_signature=2))
        )
        with service.background():
            host, port = service.address
            with ServiceClient(host, port) as client:
                app = extract_app(build_app1())
                client.install("cli-dev", serialize.app_to_dict(app))
            assert main(
                ["top", "--once", "--host", host, "--port", str(port)]
            ) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "cli-dev" in out
        assert "top cost accounts" in out

    def test_top_unreachable_service_exits_one(self, capsys):
        assert main(["top", "--once", "--host", "127.0.0.1", "--port", "1"]) == 1
        assert "cannot connect" in capsys.readouterr().err


class TestPipelineFaultHandling:
    def _restore_observability(self, monkeypatch):
        from repro.obs import (
            METRICS_ENV,
            NULL_COST_LEDGER,
            NULL_METRICS,
            set_cost_ledger,
            set_metrics,
        )

        set_metrics(NULL_METRICS)
        set_cost_ledger(NULL_COST_LEDGER)
        monkeypatch.delenv(METRICS_ENV, raising=False)

    def test_degraded_run_exits_zero_unless_strict(
        self, capsys, monkeypatch
    ):
        # The default scale (0.01) is the smallest corpus whose synthesis
        # actually reaches the SAT solver; smaller ones are trivially
        # unsat and have no budget to exhaust.
        argv = [
            "pipeline", "--scale", "0.01", "--scenarios", "2",
            "--no-cache", "--conflict-budget", "0",
        ]
        try:
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "degraded:" in out
            assert "budget_exhausted" in out
            assert main(argv + ["--strict"]) == 2
        finally:
            self._restore_observability(monkeypatch)

    def test_failed_tasks_reported_and_strict_exits_three(
        self, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_FAULT", "synthesis:error:1.0")
        report_path = tmp_path / "report.json"
        try:
            assert main(
                [
                    "pipeline", "--scale", "0.002", "--bundle-size", "4",
                    "--scenarios", "2", "--no-cache",
                    "--task-retries", "0", "--report", str(report_path),
                ]
            ) == 0
            out = capsys.readouterr().out
            assert "failures:" in out
            assert "[error]" in out

            import json

            report = json.loads(report_path.read_text())
            assert report["failures"]
            assert all(
                f["kind"] == "error" for f in report["failures"]
            )

            assert main(
                [
                    "pipeline", "--scale", "0.002", "--bundle-size", "4",
                    "--scenarios", "2", "--no-cache",
                    "--task-retries", "0", "--strict",
                ]
            ) == 3
        finally:
            self._restore_observability(monkeypatch)
            import os

            os.environ.pop("REPRO_FAULT_PARENT", None)
