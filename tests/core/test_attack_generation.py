"""Tests for attack-app generation: the synthesized exploit, executed.

The strongest validation of the synthesis pipeline: compile the scenarios
back into a runnable attacker and confirm that (a) it reproduces the
Figure 1 exfiltration on an unprotected device, and (b) the synthesized
policies stop exactly that attacker.
"""

import pytest

from repro.android.resources import Resource
from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.attack_generation import generate_attack_app
from repro.core.separ import Separ
from repro.core.vulnerabilities.base import ExploitScenario
from repro.enforcement import (
    AndroidRuntime,
    PolicyDecisionPoint,
    PolicyEnforcementPoint,
)


@pytest.fixture(scope="module")
def analysis():
    report = Separ().analyze_apks([build_app1(), build_app2()])
    return report


@pytest.fixture(scope="module")
def attacker(analysis):
    return generate_attack_app(analysis.scenarios, analysis.bundle)


class TestGeneratedApp:
    def test_requests_no_permissions(self, attacker):
        assert not attacker.manifest.uses_permissions

    def test_declares_synthesized_filter(self, attacker, analysis):
        hijack = next(
            s for s in analysis.scenarios if s.vulnerability == "intent_hijack"
        )
        declared_actions = {
            a
            for c in attacker.manifest.components
            for f in c.intent_filters
            for a in f.actions
        }
        assert set(hijack.malicious_filter["actions"]) <= declared_actions

    def test_rejects_empty_scenarios(self):
        with pytest.raises(ValueError):
            generate_attack_app([])

    def test_unusable_scenario_rejected(self):
        scenario = ExploitScenario(vulnerability="information_leak", roles={})
        with pytest.raises(ValueError):
            generate_attack_app([scenario])


class TestAttackExecution:
    def _runtime(self, attacker, policies=None):
        rt = AndroidRuntime()
        rt.install(build_app1())
        rt.install(build_app2())
        rt.install(attacker)
        if policies is not None:
            pdp = PolicyDecisionPoint(policies)
            PolicyEnforcementPoint(rt, pdp).install()
        return rt

    def test_attack_succeeds_unprotected(self, attacker):
        """The generated attacker reproduces Figure 1: the device location
        leaves via SMS, through the messenger's privileges."""
        rt = self._runtime(attacker)
        rt.start_component("com.example.navigation/LocationFinder")
        sms = rt.effects_of_kind("sms_sent")
        assert sms
        assert any(
            Resource.LOCATION in e.detail["taints"] for e in sms
        ), "the stolen location must reach the SMS sink"

    def test_attack_exfiltrates_via_log_too(self, attacker):
        rt = self._runtime(attacker)
        rt.start_component("com.example.navigation/LocationFinder")
        thief_logs = [
            e
            for e in rt.effects_of_kind("log")
            if e.component.startswith("generated.attacker/")
        ]
        assert any(
            Resource.LOCATION in e.detail["taints"] for e in thief_logs
        )

    def test_direct_launcher_drives_victim(self, attacker):
        """The launcher component exercises MessageSender directly with
        attacker-controlled payload (the Barcoder-style abuse)."""
        rt = self._runtime(attacker)
        launcher = next(
            c.name
            for c in attacker.manifest.components
            if c.name.startswith("Launcher")
        )
        rt.start_component(f"generated.attacker/{launcher}")
        assert rt.effects_of_kind("sms_sent")

    def test_policies_stop_generated_attacker(self, attacker, analysis):
        """The policies synthesized from the benign bundle block the very
        attacker compiled from the same scenarios."""
        rt = self._runtime(attacker, policies=analysis.policies)
        rt.start_component("com.example.navigation/LocationFinder")
        assert not rt.effects_of_kind("sms_sent")

    def test_policies_stop_direct_launcher_too(self, attacker, analysis):
        rt = self._runtime(attacker, policies=analysis.policies)
        launcher = next(
            c.name
            for c in attacker.manifest.components
            if c.name.startswith("Launcher")
        )
        rt.start_component(f"generated.attacker/{launcher}")
        assert not rt.effects_of_kind("sms_sent")
