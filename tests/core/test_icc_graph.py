"""Tests for the ICC delivery/relay graph."""

import pytest

from repro.android.components import ComponentKind
from repro.android.resources import Resource
from repro.core.icc_graph import deliverable, relay_edges, transitive_receivers
from repro.core.model import (
    AppModel,
    BundleModel,
    ComponentModel,
    IntentFilterModel,
    IntentModel,
    PathModel,
)


def component(name, app="a", kind=ComponentKind.SERVICE, **kwargs):
    kwargs.setdefault("exported", True)
    return ComponentModel(name=f"{app}/{name}", kind=kind, app=app, **kwargs)


def relay_component(name, app="a", **kwargs):
    return component(
        name, app, paths=(PathModel(Resource.ICC, Resource.ICC),), **kwargs
    )


def forwarding_intent(entity, sender, target, app="a"):
    return IntentModel(
        entity_id=entity,
        sender=f"{app}/{sender}",
        target=f"{app}/{target}",
        extras=frozenset({Resource.ICC}),
    )


class TestDeliverable:
    def test_explicit_match(self):
        sender = component("S", exported=True)
        receiver = component("T")
        intent = IntentModel(entity_id="i", sender="a/S", target="a/T")
        assert deliverable(intent, sender, receiver)

    def test_explicit_wrong_target(self):
        sender = component("S")
        receiver = component("T")
        intent = IntentModel(entity_id="i", sender="a/S", target="a/Other")
        assert not deliverable(intent, sender, receiver)

    def test_private_cross_app_blocked(self):
        sender = component("S", app="a")
        receiver = component("T", app="b", exported=False)
        intent = IntentModel(entity_id="i", sender="a/S", target="b/T")
        assert not deliverable(intent, sender, receiver)

    def test_passive_needs_registered_target(self):
        sender = component("S")
        receiver = component("T")
        hit = IntentModel(
            entity_id="i", sender="a/S", passive=True,
            passive_targets=frozenset({"a/T"}),
        )
        miss = IntentModel(entity_id="j", sender="a/S", passive=True)
        assert deliverable(hit, sender, receiver)
        assert not deliverable(miss, sender, receiver)

    def test_implicit_filter_match(self):
        sender = component("S")
        receiver = component(
            "T",
            exported=True,
            intent_filters=(IntentFilterModel(actions=frozenset({"go"})),),
        )
        intent = IntentModel(entity_id="i", sender="a/S", action="go")
        assert deliverable(intent, sender, receiver)


class TestRelayEdges:
    def make_chain(self, length):
        """C0 -> C1 -> ... -> C<length>, each hop forwarding ICC data."""
        components = [relay_component(f"C{i}") for i in range(length + 1)]
        intents = [
            forwarding_intent(f"i{i}", f"C{i}", f"C{i + 1}")
            for i in range(length)
        ]
        app = AppModel(package="a", components=components, intents=intents)
        return BundleModel(apps=[app])

    def test_chain_edges(self):
        bundle = self.make_chain(3)
        edges = relay_edges(bundle)
        assert edges == {
            ("a/C0", "a/C1"),
            ("a/C1", "a/C2"),
            ("a/C2", "a/C3"),
        }

    def test_non_forwarder_produces_no_edge(self):
        """Without an ICC->ICC path, an ICC-carrying Intent is not a relay."""
        comp = component("C0")  # no paths
        intent = forwarding_intent("i", "C0", "C1")
        app = AppModel(
            package="a",
            components=[comp, relay_component("C1")],
            intents=[intent],
        )
        assert not relay_edges(BundleModel(apps=[app]))

    def test_non_icc_payload_produces_no_edge(self):
        comp = relay_component("C0")
        intent = IntentModel(
            entity_id="i", sender="a/C0", target="a/C1",
            extras=frozenset({Resource.LOCATION}),
        )
        app = AppModel(
            package="a",
            components=[comp, relay_component("C1")],
            intents=[intent],
        )
        assert not relay_edges(BundleModel(apps=[app]))

    def test_transitive_receivers_reflexive(self):
        bundle = self.make_chain(4)
        reached = transitive_receivers(bundle, {"a/C1"})
        assert reached == {"a/C1", "a/C2", "a/C3", "a/C4"}

    def test_transitive_receivers_empty_start(self):
        bundle = self.make_chain(2)
        assert transitive_receivers(bundle, set()) == set()

    def test_cycle_terminates(self):
        components = [relay_component("C0"), relay_component("C1")]
        intents = [
            forwarding_intent("i0", "C0", "C1"),
            forwarding_intent("i1", "C1", "C0"),
        ]
        bundle = BundleModel(
            apps=[AppModel(package="a", components=components, intents=intents)]
        )
        reached = transitive_receivers(bundle, {"a/C0"})
        assert reached == {"a/C0", "a/C1"}
