"""Tests for incremental analysis (the Marshmallow scenario, Section IX)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.android import permissions as perms
from repro.benchsuite.running_example import (
    build_app1,
    build_app2,
    build_malicious_app,
)
from repro.core.detector import SeparDetector
from repro.core.incremental import IncrementalAnalyzer
from repro.statics import extract_app, extract_bundle


@pytest.fixture()
def analyzer():
    bundle = extract_bundle([build_app1(), build_app2()])
    return IncrementalAnalyzer(bundle)


class TestPermissionRevocation:
    def test_initial_state_has_escalation(self, analyzer):
        assert "com.example.messenger/MessageSender" in analyzer.report.components(
            "privilege_escalation"
        )

    def test_revoking_sms_removes_escalation(self, analyzer):
        """Once the messenger loses SEND_SMS, there is no capability left
        for a caller to escalate through."""
        delta = analyzer.revoke_permission(
            "com.example.messenger", perms.SEND_SMS
        )
        assert "com.example.messenger/MessageSender" in delta.removed.get(
            "privilege_escalation", set()
        )
        assert "com.example.messenger/MessageSender" not in (
            analyzer.report.components("privilege_escalation")
        )

    def test_regranting_restores_finding(self, analyzer):
        analyzer.revoke_permission("com.example.messenger", perms.SEND_SMS)
        delta = analyzer.grant_permission(
            "com.example.messenger", perms.SEND_SMS
        )
        assert "com.example.messenger/MessageSender" in delta.added.get(
            "privilege_escalation", set()
        )

    def test_unrelated_revocation_is_noop(self, analyzer):
        delta = analyzer.revoke_permission(
            "com.example.navigation", perms.SEND_SMS  # never held
        )
        assert delta.is_empty

    def test_unknown_package_rejected(self, analyzer):
        with pytest.raises(KeyError):
            analyzer.revoke_permission("ghost.app", perms.SEND_SMS)


class TestInstallUninstall:
    def test_install_reports_new_findings(self, analyzer):
        malicious = extract_app(build_malicious_app())
        delta = analyzer.install(malicious)
        # The thief's filter turns LocationFinder's implicit Intent into a
        # cross-app leak composition.
        assert any(delta.added.values())

    def test_uninstall_reverses_install(self, analyzer):
        before = {
            vuln: set(components)
            for vuln, components in analyzer.report.findings.items()
        }
        malicious = extract_app(build_malicious_app())
        analyzer.install(malicious)
        analyzer.uninstall("com.evil.innocuous")
        after = {
            vuln: set(components)
            for vuln, components in analyzer.report.findings.items()
            if components
        }
        before = {v: c for v, c in before.items() if c}
        assert after == before

    def test_double_install_rejected(self, analyzer):
        malicious = extract_app(build_malicious_app())
        analyzer.install(malicious)
        with pytest.raises(ValueError):
            analyzer.install(malicious)

    def test_uninstall_unknown_rejected(self, analyzer):
        with pytest.raises(KeyError):
            analyzer.uninstall("ghost.app")

    def test_describe_renders(self, analyzer):
        malicious = extract_app(build_malicious_app())
        delta = analyzer.install(malicious)
        text = delta.describe()
        assert text.startswith("+") or text == "(no change)"


MUTATIONS = st.lists(
    st.sampled_from(
        [
            ("revoke", "com.example.messenger", perms.SEND_SMS),
            ("grant", "com.example.messenger", perms.SEND_SMS),
            ("revoke", "com.example.navigation", perms.ACCESS_FINE_LOCATION),
            ("grant", "com.example.navigation", perms.ACCESS_FINE_LOCATION),
            ("install", None, None),
            ("uninstall", None, None),
        ]
    ),
    max_size=10,
)

_MALICIOUS = None


def _malicious_model():
    global _MALICIOUS
    if _MALICIOUS is None:
        _MALICIOUS = extract_app(build_malicious_app())
    return _MALICIOUS


@given(MUTATIONS)
@settings(max_examples=30, deadline=None)
def test_incremental_equals_from_scratch(mutations):
    """After any mutation sequence -- grants, revocations, installs and
    uninstalls interleaved -- incremental state matches a fresh detection
    over the current effective bundle (the promise in incremental.py's
    docstring)."""
    bundle = extract_bundle([build_app1(), build_app2()])
    analyzer = IncrementalAnalyzer(bundle)
    malicious_installed = False
    for op, package, permission in mutations:
        if op == "revoke":
            analyzer.revoke_permission(package, permission)
        elif op == "grant":
            analyzer.grant_permission(package, permission)
        elif op == "install":
            if not malicious_installed:
                analyzer.install(_malicious_model())
                malicious_installed = True
        elif op == "uninstall":
            if malicious_installed:
                analyzer.uninstall(_malicious_model().package)
                malicious_installed = False
    fresh = SeparDetector().detect(analyzer.current_bundle())
    incremental = {
        vuln: components
        for vuln, components in analyzer.report.findings.items()
        if components
    }
    scratch = {
        vuln: components
        for vuln, components in fresh.findings.items()
        if components
    }
    assert incremental == scratch


def test_policy_refresh_after_revocation(analyzer):
    """The Marshmallow loop: revoke -> re-synthesize -> fewer policies."""
    policies_before = analyzer.refresh_policies()
    analyzer.revoke_permission("com.example.messenger", perms.SEND_SMS)
    policies_after = analyzer.refresh_policies()
    escalation_before = [
        p for p in policies_before if p.vulnerability == "privilege_escalation"
    ]
    escalation_after = [
        p for p in policies_after if p.vulnerability == "privilege_escalation"
    ]
    assert escalation_before and not escalation_after
