"""Tests for the reporting helpers (tables, histograms, scenario boxes)."""

import pytest

from repro.android.resources import Resource
from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.separ import Separ
from repro.core.vulnerabilities.base import ExploitScenario
from repro.reporting import render_histogram, render_table
from repro.reporting.scenario import render_scenario, render_scenarios


class TestTable:
    def test_alignment(self):
        text = render_table(["a", "bbbb"], [["xx", "y"], ["x", "yyyyy"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  | bbbb")
        assert all("|" in l for l in lines if "-+-" not in l)

    def test_title(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_non_string_cells(self):
        text = render_table(["n"], [[42], [3.5]])
        assert "42" in text and "3.5" in text


class TestHistogram:
    def test_bars_scale(self):
        text = render_histogram(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 2 * lines[0].count("#")

    def test_zero_values(self):
        text = render_histogram(["a"], [0.0])
        assert "a" in text

    def test_empty(self):
        assert render_histogram([], [], title="t") == "t"


class TestScenarioRendering:
    @pytest.fixture(scope="class")
    def scenarios(self):
        report = Separ(scenarios_per_signature=2).analyze_apks(
            [build_app1(), build_app2()]
        )
        return report.scenarios

    def test_hijack_scenario_shows_filter(self, scenarios):
        hijack = next(
            s for s in scenarios if s.vulnerability == "intent_hijack"
        )
        text = render_scenario(hijack)
        assert "declares filter" in text
        assert "showLoc" in text
        assert "app NOT on device" in text

    def test_launch_scenario_shows_victim(self, scenarios):
        launch = next(
            s for s in scenarios if s.vulnerability == "service_launch"
        )
        text = render_scenario(launch)
        assert "victim:" in text
        assert "app on device" in text

    def test_escalation_scenario_shows_permission(self, scenarios):
        escalation = next(
            s for s in scenarios if s.vulnerability == "privilege_escalation"
        )
        text = render_scenario(escalation)
        assert "unenforced" in text

    def test_render_all(self, scenarios):
        text = render_scenarios(scenarios)
        assert text.count("=== synthesized scenario") == len(scenarios)

    def test_minimal_scenario_without_roles(self):
        scenario = ExploitScenario(vulnerability="custom", roles={})
        text = render_scenario(scenario)
        assert "custom" in text
