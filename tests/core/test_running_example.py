"""End-to-end synthesis on the paper's running example (Sections II-VI).

The bundle {navigation app, messenger app} must yield: an Intent-hijack
scenario against LocationFinder's implicit location Intent, a
service-launch scenario against MessageSender, a cross-app information
leak (location -> SMS), a privilege-escalation scenario (SEND_SMS), and
the corresponding ECA policies -- including the paper's exact example
policy (extra: LOCATION, receiver: MessageSender, action: user prompt).
"""

import pytest

from repro.android.resources import Resource
from repro.android import permissions as perms
from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.policy import PolicyAction, PolicyEvent
from repro.core.separ import Separ


@pytest.fixture(scope="module")
def report():
    return Separ().analyze_apks([build_app1(), build_app2()])


class TestScenarios:
    def test_intent_hijack_found(self, report):
        hijacks = [
            s for s in report.scenarios if s.vulnerability == "intent_hijack"
        ]
        assert hijacks, "the implicit showLoc Intent must be hijackable"
        scenario = next(
            s
            for s in hijacks
            if s.roles["victim"] == "com.example.navigation/LocationFinder"
        )
        assert scenario.intent["action"] == "showLoc"
        assert Resource.LOCATION in scenario.intent["extras"]
        # The synthesized malicious filter lists the hijacked action.
        assert "showLoc" in scenario.malicious_filter["actions"]

    def test_service_launch_found(self, report):
        launches = [
            s for s in report.scenarios if s.vulnerability == "service_launch"
        ]
        victims = {s.roles["victim"] for s in launches}
        assert "com.example.messenger/MessageSender" in victims

    def test_information_leak_found(self, report):
        leaks = [
            s for s in report.scenarios if s.vulnerability == "information_leak"
        ]
        assert any(
            s.roles["source_component"] == "com.example.navigation/LocationFinder"
            for s in leaks
        ) or any(
            s.roles["sink_component"] == "com.example.messenger/MessageSender"
            for s in leaks
        )

    def test_privilege_escalation_found(self, report):
        escalations = [
            s
            for s in report.scenarios
            if s.vulnerability == "privilege_escalation"
        ]
        victims = {s.roles["victim"] for s in escalations}
        assert "com.example.messenger/MessageSender" in victims
        scenario = next(
            s
            for s in escalations
            if s.roles["victim"] == "com.example.messenger/MessageSender"
        )
        assert scenario.roles["escalated_permission"] == perms.SEND_SMS

    def test_minimal_scenarios_have_minimal_malicious_footprint(self, report):
        """Aluminum minimality: a hijack scenario's synthesized filter only
        lists what matching requires."""
        hijacks = [
            s
            for s in report.scenarios
            if s.vulnerability == "intent_hijack"
            and s.roles["victim"] == "com.example.navigation/LocationFinder"
        ]
        scenario = hijacks[0]
        assert scenario.malicious_filter["actions"] == {"showLoc"}
        assert not scenario.malicious_filter["data_types"]
        assert not scenario.malicious_filter["data_schemes"]


class TestPolicies:
    def test_paper_example_policy_synthesized(self, report):
        """The exact policy of Section VI: LOCATION payload into
        MessageSender requires user approval."""
        matches = [
            p
            for p in report.policies
            if p.event is PolicyEvent.ICC_RECEIVE
            and p.receiver == "com.example.messenger/MessageSender"
            and Resource.LOCATION in p.extras_any
        ]
        assert matches
        assert all(p.action is PolicyAction.PROMPT for p in matches)

    def test_hijack_policy_allowlist(self, report):
        hijack_policies = [
            p for p in report.policies if p.vulnerability == "intent_hijack"
        ]
        assert hijack_policies
        policy = next(
            p
            for p in hijack_policies
            if p.sender == "com.example.navigation/LocationFinder"
        )
        assert policy.event is PolicyEvent.ICC_SEND
        assert policy.intent_action == "showLoc"
        # The only legitimate receiver in the bundle is RouteFinder.
        assert policy.allowed_receivers == {
            "com.example.navigation/RouteFinder"
        }

    def test_escalation_policy_requires_permission(self, report):
        escalation_policies = [
            p
            for p in report.policies
            if p.vulnerability == "privilege_escalation"
            and p.receiver == "com.example.messenger/MessageSender"
        ]
        assert escalation_policies
        assert escalation_policies[0].sender_lacks_permission == perms.SEND_SMS

    def test_policies_deduplicated(self, report):
        keys = [
            (
                p.event,
                p.receiver,
                p.sender,
                p.intent_action,
                p.extras_any,
                p.allowed_receivers,
                p.sender_lacks_permission,
                p.vulnerability,
            )
            for p in report.policies
        ]
        assert len(keys) == len(set(keys))


class TestReport:
    def test_vulnerable_apps(self, report):
        assert "com.example.messenger" in report.vulnerable_apps("service_launch")
        assert "com.example.navigation" in report.vulnerable_apps("intent_hijack")

    def test_stats_populated(self, report):
        assert report.stats.construction_seconds > 0
        assert report.stats.num_vars > 0
        assert "intent_hijack" in report.stats.per_signature

    def test_summary_renders(self, report):
        text = report.summary()
        assert "bundle: 2 apps" in text
        assert "policies synthesized" in text

    def test_detector_agrees_with_synthesis(self, report):
        """The concrete detector and the SAT pipeline agree on the victim
        sets for this bundle."""
        detection = report.detection
        assert "com.example.navigation/LocationFinder" in detection.components(
            "intent_hijack"
        )
        assert "com.example.messenger/MessageSender" in detection.components(
            "service_launch"
        )
        assert "com.example.messenger/MessageSender" in detection.components(
            "privilege_escalation"
        )
        sat_victims = {
            s.roles["victim"]
            for s in report.scenarios
            if s.vulnerability == "service_launch"
        }
        assert detection.components("service_launch") <= sat_victims | {
            None
        } or detection.components("service_launch") >= sat_victims
