"""Differential testing: synthesis modes and solver backends.

The shared encoding (one translation per bundle, every signature
enumerated under selector assumptions on one warm solver) is an
optimization, not a semantics change: for any bundle it must produce
byte-identical scenario payloads, the same detected-vulnerability sets,
and the same reports -- including under a conflict budget, where both
modes degrade by truncating each signature's canonical enumeration
rather than by diverging.

The same contract holds across *solver backends*: the flat-arena fast
solver and the reference solver must produce byte-identical payloads in
both modes (that identity is what justifies leaving the backend out of
pipeline cache keys), so the mode tests here run under every registered
backend, and ``TestBackendsAgree`` pins the full backend-by-mode matrix
to a single payload.

Bundles are drawn from the injected-vulnerability corpus generator under
a fixed seed, so CI replays the exact same instances every run.
"""

import json
import random

import pytest

from repro.core.attack_generation import (
    SCALED_SIGNATURES,
    AdversarialCorpusConfig,
    AdversarialCorpusGenerator,
)
from repro.core.serialize import scenario_to_dict
from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.sat import SOLVER_BACKENDS
from repro.statics import extract_bundle
from repro.workloads.corpus import CorpusConfig, CorpusGenerator


SEED = 20160807

BACKENDS = sorted(SOLVER_BACKENDS)


@pytest.fixture(scope="module")
def corpus():
    generator = CorpusGenerator(CorpusConfig(scale=0.01, seed=SEED))
    apks = generator.generate()
    ledger = generator.ledger
    flagged = set()
    for group in (
        ledger.hijack_apps,
        ledger.launch_apps,
        ledger.leak_apps,
        ledger.escalation_apps,
    ):
        flagged.update(group)
    return apks, flagged


def _payload(result):
    return json.dumps(
        [scenario_to_dict(s) for s in result.scenarios], sort_keys=True
    )


def _by_signature(result):
    grouped = {}
    for scenario in result.scenarios:
        grouped.setdefault(scenario.vulnerability, []).append(
            scenario_to_dict(scenario)
        )
    return grouped


def _run(bundle, shared, **kwargs):
    engine = AnalysisAndSynthesisEngine(
        scenarios_per_signature=4, shared_encoding=shared, **kwargs
    )
    return engine.run(bundle)


def _random_bundles(apks, flagged, count, size):
    """Seeded bundles biased toward the injected-vulnerable apps."""
    rng = random.Random(SEED)
    vulnerable = [a for a in apks if a.package in flagged]
    neutral = [a for a in apks if a.package not in flagged]
    bundles = []
    for _ in range(count):
        picked = rng.sample(vulnerable, min(2, len(vulnerable)))
        picked += rng.sample(neutral, max(0, size - len(picked)))
        bundles.append(extract_bundle(picked))
    return bundles


@pytest.mark.parametrize("backend", BACKENDS)
class TestModesAgree:
    def test_identical_scenarios_and_vulnerability_sets(
        self, corpus, backend
    ):
        apks, flagged = corpus
        for bundle in _random_bundles(apks, flagged, count=3, size=3):
            per_sig = _run(bundle, shared=False, solver_backend=backend)
            shared = _run(bundle, shared=True, solver_backend=backend)
            assert _payload(per_sig) == _payload(shared)
            assert {s.vulnerability for s in per_sig.scenarios} == {
                s.vulnerability for s in shared.scenarios
            }
            # Reuse accounting only ever reports work the shared mode
            # actually skipped.
            assert per_sig.stats.translations == len(
                AnalysisAndSynthesisEngine().signatures
            )
            assert shared.stats.translations == 1
            assert shared.stats.translations_avoided == (
                per_sig.stats.translations - 1
            )

    def test_vulnerable_bundle_finds_scenarios_in_both_modes(
        self, corpus, backend
    ):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:3])
        per_sig = _run(bundle, shared=False, solver_backend=backend)
        shared = _run(bundle, shared=True, solver_backend=backend)
        assert per_sig.scenarios, "injected bundle should yield scenarios"
        assert _payload(per_sig) == _payload(shared)
        assert per_sig.stats.backend == backend
        assert shared.stats.backend == backend

    def test_empty_bundle_agrees(self, backend):
        bundle = extract_bundle([])
        per_sig = _run(bundle, shared=False, solver_backend=backend)
        shared = _run(bundle, shared=True, solver_backend=backend)
        assert _payload(per_sig) == _payload(shared)


class TestBackendsAgree:
    """The backend-by-mode matrix must collapse to one payload.

    This is the invariant that lets the pipeline cache omit the solver
    backend from its keys: any (backend, mode) combination may serve a
    payload cached by any other."""

    def test_backend_mode_matrix_is_byte_identical(self, corpus):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:3])
        payloads = {
            (backend, shared): _payload(
                _run(bundle, shared=shared, solver_backend=backend)
            )
            for backend in BACKENDS
            for shared in (False, True)
        }
        assert len(set(payloads.values())) == 1, sorted(payloads)

    def test_budgeted_runs_agree_across_backends(self, corpus):
        """Degraded (budget-exhausted) runs must also match: the exact
        ``BudgetExhausted`` contract makes both backends truncate each
        signature's enumeration at the same point."""
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:3])
        for budget in (1, 25):
            for shared in (False, True):
                payloads = {
                    backend: _payload(
                        _run(
                            bundle,
                            shared=shared,
                            solver_backend=backend,
                            conflict_budget=budget,
                        )
                    )
                    for backend in BACKENDS
                }
                assert len(set(payloads.values())) == 1, (budget, shared)


class TestBudgetDegradation:
    """Both modes degrade the same way: each signature's enumeration is
    cut to a prefix of its canonical (unbudgeted) scenario list and the
    result is flagged exhausted -- never a divergent scenario."""

    def _assert_prefix_degradation(self, full, budgeted):
        full_by_sig = _by_signature(full)
        cut_by_sig = _by_signature(budgeted)
        for name, scenarios in cut_by_sig.items():
            reference = full_by_sig.get(name, [])
            assert scenarios == reference[: len(scenarios)], name
        if not budgeted.stats.exhausted:
            # Budget never bit: the runs must match outright.
            assert _payload(budgeted) == _payload(full)

    def test_conflict_budget_prefix_semantics(self, corpus):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:3])
        full = _run(bundle, shared=False)
        for budget in (1, 25):
            per_sig = _run(bundle, shared=False, conflict_budget=budget)
            shared = _run(bundle, shared=True, conflict_budget=budget)
            self._assert_prefix_degradation(full, per_sig)
            self._assert_prefix_degradation(full, shared)
            # Exhaustion is recorded per signature in both modes.
            for result in (per_sig, shared):
                for name, entry in result.stats.per_signature.items():
                    assert "exhausted" in entry, name

    def test_generous_budget_is_exact(self, corpus):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:2])
        full = _run(bundle, shared=False)
        per_sig = _run(bundle, shared=False, conflict_budget=10_000_000)
        shared = _run(bundle, shared=True, conflict_budget=10_000_000)
        assert not per_sig.stats.exhausted
        assert not shared.stats.exhausted
        assert _payload(per_sig) == _payload(full)
        assert _payload(shared) == _payload(full)


@pytest.fixture(scope="module")
def scaled_bundles():
    """Adversarial bundles exercising the four PR-9 signatures: one
    planted attack plus one near-miss decoy per signature per bundle."""
    config = AdversarialCorpusConfig(seed=SEED, bundles=2, apps_per_bundle=5)
    raw, _manifest = AdversarialCorpusGenerator(config).generate()
    return [
        extract_bundle(apks, handle_dynamic_receivers=True) for apks in raw
    ]


class TestScaledSignaturesDifferential:
    """The shared-encoding and backend identities must extend to the
    scaled threat model: re-delegation chains, provider leaks, dynamic
    receiver hijack and collusion all enumerate under gated selectors."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_modes_agree_and_all_scaled_signatures_fire(
        self, scaled_bundles, backend
    ):
        for bundle in scaled_bundles:
            per_sig = _run(bundle, shared=False, solver_backend=backend)
            shared = _run(bundle, shared=True, solver_backend=backend)
            assert _payload(per_sig) == _payload(shared)
            found = {s.vulnerability for s in shared.scenarios}
            assert set(SCALED_SIGNATURES) <= found, (
                "every planted scaled signature must enumerate; "
                f"missing {set(SCALED_SIGNATURES) - found}"
            )

    def test_backend_mode_matrix_on_scaled_bundle(self, scaled_bundles):
        bundle = scaled_bundles[0]
        payloads = {
            (backend, shared): _payload(
                _run(bundle, shared=shared, solver_backend=backend)
            )
            for backend in BACKENDS
            for shared in (False, True)
        }
        assert len(set(payloads.values())) == 1, sorted(payloads)

    def test_budget_prefix_semantics_on_scaled_bundle(self, scaled_bundles):
        bundle = scaled_bundles[0]
        full = _run(bundle, shared=False)
        full_by_sig = _by_signature(full)
        for budget in (1, 50):
            for shared in (False, True):
                cut = _run(bundle, shared=shared, conflict_budget=budget)
                cut_by_sig = _by_signature(cut)
                for name, scenarios in cut_by_sig.items():
                    reference = full_by_sig.get(name, [])
                    assert scenarios == reference[: len(scenarios)], (
                        budget,
                        shared,
                        name,
                    )
                if not cut.stats.exhausted:
                    assert _payload(cut) == _payload(full)
