"""Differential testing: shared-encoding vs per-signature synthesis.

The shared encoding (one translation per bundle, every signature
enumerated under selector assumptions on one warm solver) is an
optimization, not a semantics change: for any bundle it must produce
byte-identical scenario payloads, the same detected-vulnerability sets,
and the same reports -- including under a conflict budget, where both
modes degrade by truncating each signature's canonical enumeration
rather than by diverging.

Bundles are drawn from the injected-vulnerability corpus generator under
a fixed seed, so CI replays the exact same instances every run.
"""

import json
import random

import pytest

from repro.core.serialize import scenario_to_dict
from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.statics import extract_bundle
from repro.workloads.corpus import CorpusConfig, CorpusGenerator


SEED = 20160807


@pytest.fixture(scope="module")
def corpus():
    generator = CorpusGenerator(CorpusConfig(scale=0.01, seed=SEED))
    apks = generator.generate()
    ledger = generator.ledger
    flagged = set()
    for group in (
        ledger.hijack_apps,
        ledger.launch_apps,
        ledger.leak_apps,
        ledger.escalation_apps,
    ):
        flagged.update(group)
    return apks, flagged


def _payload(result):
    return json.dumps(
        [scenario_to_dict(s) for s in result.scenarios], sort_keys=True
    )


def _by_signature(result):
    grouped = {}
    for scenario in result.scenarios:
        grouped.setdefault(scenario.vulnerability, []).append(
            scenario_to_dict(scenario)
        )
    return grouped


def _run(bundle, shared, **kwargs):
    engine = AnalysisAndSynthesisEngine(
        scenarios_per_signature=4, shared_encoding=shared, **kwargs
    )
    return engine.run(bundle)


def _random_bundles(apks, flagged, count, size):
    """Seeded bundles biased toward the injected-vulnerable apps."""
    rng = random.Random(SEED)
    vulnerable = [a for a in apks if a.package in flagged]
    neutral = [a for a in apks if a.package not in flagged]
    bundles = []
    for _ in range(count):
        picked = rng.sample(vulnerable, min(2, len(vulnerable)))
        picked += rng.sample(neutral, max(0, size - len(picked)))
        bundles.append(extract_bundle(picked))
    return bundles


class TestModesAgree:
    def test_identical_scenarios_and_vulnerability_sets(self, corpus):
        apks, flagged = corpus
        for bundle in _random_bundles(apks, flagged, count=3, size=3):
            per_sig = _run(bundle, shared=False)
            shared = _run(bundle, shared=True)
            assert _payload(per_sig) == _payload(shared)
            assert {s.vulnerability for s in per_sig.scenarios} == {
                s.vulnerability for s in shared.scenarios
            }
            # Reuse accounting only ever reports work the shared mode
            # actually skipped.
            assert per_sig.stats.translations == len(
                AnalysisAndSynthesisEngine().signatures
            )
            assert shared.stats.translations == 1
            assert shared.stats.translations_avoided == (
                per_sig.stats.translations - 1
            )

    def test_vulnerable_bundle_finds_scenarios_in_both_modes(self, corpus):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:3])
        per_sig = _run(bundle, shared=False)
        shared = _run(bundle, shared=True)
        assert per_sig.scenarios, "injected bundle should yield scenarios"
        assert _payload(per_sig) == _payload(shared)

    def test_empty_bundle_agrees(self):
        bundle = extract_bundle([])
        per_sig = _run(bundle, shared=False)
        shared = _run(bundle, shared=True)
        assert _payload(per_sig) == _payload(shared)


class TestBudgetDegradation:
    """Both modes degrade the same way: each signature's enumeration is
    cut to a prefix of its canonical (unbudgeted) scenario list and the
    result is flagged exhausted -- never a divergent scenario."""

    def _assert_prefix_degradation(self, full, budgeted):
        full_by_sig = _by_signature(full)
        cut_by_sig = _by_signature(budgeted)
        for name, scenarios in cut_by_sig.items():
            reference = full_by_sig.get(name, [])
            assert scenarios == reference[: len(scenarios)], name
        if not budgeted.stats.exhausted:
            # Budget never bit: the runs must match outright.
            assert _payload(budgeted) == _payload(full)

    def test_conflict_budget_prefix_semantics(self, corpus):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:3])
        full = _run(bundle, shared=False)
        for budget in (1, 25):
            per_sig = _run(bundle, shared=False, conflict_budget=budget)
            shared = _run(bundle, shared=True, conflict_budget=budget)
            self._assert_prefix_degradation(full, per_sig)
            self._assert_prefix_degradation(full, shared)
            # Exhaustion is recorded per signature in both modes.
            for result in (per_sig, shared):
                for name, entry in result.stats.per_signature.items():
                    assert "exhausted" in entry, name

    def test_generous_budget_is_exact(self, corpus):
        apks, flagged = corpus
        vulnerable = [a for a in apks if a.package in flagged]
        if not vulnerable:
            pytest.skip("corpus slice contains no injected apps")
        bundle = extract_bundle(vulnerable[:2])
        full = _run(bundle, shared=False)
        per_sig = _run(bundle, shared=False, conflict_budget=10_000_000)
        shared = _run(bundle, shared=True, conflict_budget=10_000_000)
        assert not per_sig.stats.exhausted
        assert not shared.stats.exhausted
        assert _payload(per_sig) == _payload(full)
        assert _payload(shared) == _payload(full)
