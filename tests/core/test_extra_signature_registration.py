"""Regression: signature names outside the built-in registry flow through
stats, reports and policy derivation without KeyError.

Early report plumbing keyed summaries on the original signature list;
registering an extra plugin (as PR 9 does four times over) must not
require touching stats aggregation, serialization, run-report degradation
summaries, or policy derivation.  This suite registers a synthetic
"fifth" signature with a never-before-seen name and pushes it through
every per-signature surface."""

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.policy import derive_policies
from repro.core.synthesis import AnalysisAndSynthesisEngine, SynthesisStats
from repro.core.vulnerabilities import default_signatures
from repro.core.vulnerabilities.base import (
    ExploitScenario,
    VulnerabilitySignature,
)
from repro.statics import extract_bundle

EXOTIC = "exotic_fifth_signature"


class ExoticSignature(VulnerabilitySignature):
    """A plugin whose facts always rule it out (dead-gated goal)."""

    name = EXOTIC

    def instantiate(self, spec):
        return self.impossible()


@pytest.fixture(scope="module")
def bundle():
    return extract_bundle([build_app1(), build_app2()])


@pytest.fixture(scope="module", params=[False, True], ids=["per-sig", "shared"])
def result(request, bundle):
    engine = AnalysisAndSynthesisEngine(
        signatures=default_signatures() + [ExoticSignature()],
        scenarios_per_signature=2,
        shared_encoding=request.param,
    )
    return engine.run(bundle)


def test_stats_record_the_extra_signature(result):
    assert EXOTIC in result.stats.per_signature
    entry = result.stats.per_signature[EXOTIC]
    assert entry.get("scenarios") == 0
    assert "exhausted" in entry


def test_stats_round_trip_and_merge_with_extra_signature(result):
    clone = SynthesisStats.from_dict(result.stats.to_dict())
    assert EXOTIC in clone.per_signature
    rollup = SynthesisStats()
    rollup.merge(clone)
    rollup.merge(clone)
    assert EXOTIC in rollup.per_signature
    assert rollup.to_dict()["per_signature"][EXOTIC] is not None


def test_unknown_vulnerability_name_derives_no_policy(bundle):
    scenario = ExploitScenario(
        vulnerability=EXOTIC,
        roles={"victim": "app1.example/Main"},
        intent={},
    )
    assert derive_policies([scenario], bundle) == []


def test_known_scenarios_unaffected_by_extra_registration(bundle, result):
    baseline = AnalysisAndSynthesisEngine(scenarios_per_signature=2).run(
        bundle
    )
    assert {s.vulnerability for s in result.scenarios} == {
        s.vulnerability for s in baseline.scenarios
    }
    assert not any(s.vulnerability == EXOTIC for s in result.scenarios)
