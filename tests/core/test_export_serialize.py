"""Tests for Alloy export and JSON model serialization."""

import pytest

from repro.benchsuite.running_example import build_app1, build_app2
from repro.core import alloy_export
from repro.core import serialize
from repro.core.detector import SeparDetector
from repro.statics import extract_app, extract_bundle
from repro.workloads import CorpusConfig, CorpusGenerator


@pytest.fixture(scope="module")
def bundle():
    return extract_bundle([build_app1(), build_app2()])


class TestAlloyExport:
    def test_framework_module_structure(self):
        text = alloy_export.render_framework()
        assert "abstract sig Component" in text
        assert "fact IFandComponent" in text
        assert "fact NoIFforProviders" in text
        assert "receiver : lone Component" in text

    def test_app_module_listing4_shape(self, bundle):
        app1 = bundle.apps[0]
        text = alloy_export.render_app(app1)
        assert "open androidDeclaration" in text
        # LocationFinder: a Service with no filters and a LOCATION->ICC path.
        assert "extends Service" in text
        assert "no intentFilters" in text
        assert "source = LOCATION" in text
        assert "sink = ICC" in text
        # The implicit Intent: sender, no receiver, action, extras.
        assert "no receiver" in text
        assert "extra = LOCATION" in text

    def test_identifiers_mangled(self, bundle):
        text = alloy_export.render_bundle(bundle)
        # No raw slashes or dots may survive in identifiers.
        for line in text.splitlines():
            if line.strip().startswith("one sig"):
                name = line.split()[2]
                assert "/" not in name and "." not in name

    def test_signature_listing5(self):
        text = alloy_export.render_service_launch_signature()
        assert "GeneratedServiceLaunch" in text
        assert "disj launchedCmp, malCmp" in text
        assert "not (malCmp.app in Device.apps)" in text

    def test_bundle_concatenates_all_apps(self, bundle):
        text = alloy_export.render_bundle(bundle)
        for app in bundle.apps:
            assert f"// module for app {app.package}" in text


class TestSerialization:
    def test_roundtrip_running_example(self, bundle):
        for app in bundle.apps:
            text = serialize.dumps_app(app)
            loaded = serialize.loads_app(text)
            assert loaded.package == app.package
            assert loaded.components == app.components
            assert loaded.intents == app.intents
            assert loaded.uses_permissions == app.uses_permissions

    def test_bundle_roundtrip_preserves_detection(self, bundle):
        text = serialize.dumps_bundle(bundle)
        loaded = serialize.loads_bundle(text)
        original = SeparDetector().detect(bundle)
        restored = SeparDetector().detect(loaded)
        assert original.findings == restored.findings
        assert original.leak_pairs == restored.leak_pairs

    def test_roundtrip_generated_corpus_sample(self):
        generator = CorpusGenerator(CorpusConfig(scale=0.01, seed=5))
        for apk in generator.generate()[:10]:
            app = extract_app(apk)
            loaded = serialize.loads_app(serialize.dumps_app(app))
            assert loaded.components == app.components
            assert loaded.intents == app.intents
            assert loaded.provider_accesses == app.provider_accesses

    def test_version_guard(self):
        with pytest.raises(ValueError):
            serialize.app_from_dict(
                {"format_version": 999, "package": "x",
                 "uses_permissions": [], "components": [], "intents": []}
            )

    def test_json_is_stable(self, bundle):
        app = bundle.apps[0]
        assert serialize.dumps_app(app) == serialize.dumps_app(app)
