"""Property tests for the adversarial corpus generator (PR 9).

Three seeded properties anchor the precision/recall harness:

1. **Recall = 1 on plants.**  Every planted attack is found by the SAT
   synthesis (and by the decision-procedure detector twin) -- the
   generator never plants an attack the axioms cannot see.
2. **Precision = 1 on decoys.**  A corpus of decoys alone (each a
   near-miss differing by exactly the guard the axioms check) yields
   zero findings for all four scaled signatures, background graph
   included.
3. **Determinism.**  The same seed reproduces the corpus and its
   ground-truth manifest byte-for-byte; a different seed does not.
"""

import pytest

from repro.benchsuite.groundtruth import (
    findings_from_scenarios,
    score_against_manifest,
)
from repro.core.attack_generation import (
    SCALED_SIGNATURES,
    AdversarialCorpusConfig,
    AdversarialCorpusGenerator,
    GroundTruthManifest,
)
from repro.core.detector import SeparDetector
from repro.core.serialize import app_to_dict
from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.statics import extract_bundle

SEED = 20160808


def _generate(**overrides):
    config = AdversarialCorpusConfig(
        seed=overrides.pop("seed", SEED),
        bundles=overrides.pop("bundles", 2),
        apps_per_bundle=overrides.pop("apps_per_bundle", 6),
        **overrides,
    )
    return AdversarialCorpusGenerator(config).generate()


def _extract(raw_bundles):
    return [
        extract_bundle(apks, handle_dynamic_receivers=True)
        for apks in raw_bundles
    ]


@pytest.fixture(scope="module")
def corpus():
    raw, manifest = _generate()
    return _extract(raw), manifest


@pytest.fixture(scope="module")
def scenarios(corpus):
    bundles, _ = corpus
    engine = AnalysisAndSynthesisEngine(scenarios_per_signature=4)
    return [engine.run(bundle).scenarios for bundle in bundles]


class TestPlantedRecall:
    def test_sat_synthesis_finds_every_plant(self, corpus, scenarios):
        _, manifest = corpus
        scores = score_against_manifest(
            manifest, findings_from_scenarios(scenarios)
        )
        assert set(scores) == set(SCALED_SIGNATURES)
        for name, acc in scores.items():
            assert acc.recall == 1.0, (name, acc)
            assert acc.precision == 1.0, (name, acc)
            assert acc.false_negatives == 0, name
            assert acc.true_positives > 0, name

    def test_detector_twin_agrees_with_manifest(self, corpus):
        bundles, manifest = corpus
        detector = SeparDetector()
        for b, bundle in enumerate(bundles):
            report = detector.detect(bundle)
            for name in SCALED_SIGNATURES:
                assert report.apps(name) == manifest.expected(name, b), (
                    b,
                    name,
                )


class TestDecoyPrecision:
    def test_decoy_only_corpus_is_silent(self):
        raw, manifest = _generate(plants_per_signature=0)
        assert not manifest.planted
        assert manifest.decoys
        engine = AnalysisAndSynthesisEngine(scenarios_per_signature=4)
        detector = SeparDetector()
        for bundle in _extract(raw):
            result = engine.run(bundle)
            found = {s.vulnerability for s in result.scenarios}
            assert not (found & set(SCALED_SIGNATURES)), found
            report = detector.detect(bundle)
            for name in SCALED_SIGNATURES:
                assert not report.components(name), name

    def test_background_only_corpus_is_silent(self):
        raw, manifest = _generate(
            plants_per_signature=0, decoys_per_signature=0
        )
        assert not manifest.planted and not manifest.decoys
        engine = AnalysisAndSynthesisEngine(scenarios_per_signature=4)
        for bundle in _extract(raw):
            found = {s.vulnerability for s in engine.run(bundle).scenarios}
            assert not (found & set(SCALED_SIGNATURES)), found


class TestDeterminism:
    def test_same_seed_regenerates_byte_identically(self):
        raw_a, manifest_a = _generate()
        raw_b, manifest_b = _generate()
        assert manifest_a.to_dict() == manifest_b.to_dict()
        # App dumps carry an extraction-timing field; the determinism
        # claim is about the *models*, so compare everything but timing.
        for bundle_a, bundle_b in zip(_extract(raw_a), _extract(raw_b)):
            assert len(bundle_a.apps) == len(bundle_b.apps)
            for app_a, app_b in zip(bundle_a.apps, bundle_b.apps):
                dict_a, dict_b = app_to_dict(app_a), app_to_dict(app_b)
                dict_a.pop("extraction_seconds", None)
                dict_b.pop("extraction_seconds", None)
                assert dict_a == dict_b, app_a.package

    def test_different_seed_differs(self):
        _, manifest_a = _generate()
        _, manifest_b = _generate(seed=SEED + 1)
        assert manifest_a.to_dict() != manifest_b.to_dict()

    def test_manifest_round_trips(self):
        _, manifest = _generate()
        clone = GroundTruthManifest.from_dict(manifest.to_dict())
        assert clone.to_dict() == manifest.to_dict()
        for name in clone.signatures():
            for b in range(clone.bundles):
                assert clone.expected(name, b) == manifest.expected(name, b)


class TestConfigValidation:
    def test_too_few_apps_rejected(self):
        with pytest.raises(ValueError):
            AdversarialCorpusGenerator(
                AdversarialCorpusConfig(apps_per_bundle=3)
            )

    def test_manifest_counts_match_config(self):
        config = AdversarialCorpusConfig(
            seed=SEED, bundles=3, apps_per_bundle=6
        )
        _, manifest = AdversarialCorpusGenerator(config).generate()
        assert manifest.bundles == 3
        per_bundle = config.plants_per_signature * len(config.signatures)
        assert len(manifest.planted) == 3 * per_bundle
        assert len(manifest.decoys) == 3 * per_bundle
