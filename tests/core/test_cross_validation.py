"""Cross-validation properties between independent system layers.

Three implementations of "what can happen" exist in this repository and
must agree where their domains overlap:

1. the static analyses (AME) predict flows;
2. the concrete runtime executes them;
3. the SAT-based synthesis and the plain-Python detector decide
   vulnerability existence.

These property tests generate random small apps/bundles and check the
layers against each other -- the strongest evidence that none of them is
quietly wrong.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.android.apk import Apk
from repro.android.components import ComponentDecl, ComponentKind
from repro.android.intents import IntentFilter
from repro.android.manifest import Manifest
from repro.android.resources import Resource
from repro.core.detector import SeparDetector
from repro.core.separ import Separ
from repro.dex import DexClass, DexProgram, MethodBuilder
from repro.enforcement import AndroidRuntime
from repro.statics import extract_app, extract_bundle

SOURCES = ["TelephonyManager.getDeviceId", "LocationManager.getLastKnownLocation"]
SOURCE_RESOURCE = {
    "TelephonyManager.getDeviceId": Resource.IMEI,
    "LocationManager.getLastKnownLocation": Resource.LOCATION,
}


# ---------------------------------------------------------------------------
# Random two-component leak apps
# ---------------------------------------------------------------------------
@st.composite
def leak_apps(draw):
    """A sender component and a receiver component; the sender may or may
    not taint the payload, the receiver may or may not leak it, and the
    addressing may or may not connect them."""
    source_api = draw(st.sampled_from(SOURCES))
    tainted = draw(st.booleans())
    explicit = draw(st.booleans())
    action_match = draw(st.booleans())
    receiver_leaks = draw(st.booleans())

    sender = MethodBuilder("onCreate", params=("p0",))
    if tainted:
        sender.invoke(source_api, receiver="v9", dest="v8")
    else:
        sender.const_string("v8", "benign")
    sender.new_instance("v0", "Intent")
    if explicit:
        sender.const_string("v1", "pkg/Recv")
        sender.invoke("Intent.setClassName", receiver="v0", args=("v1",))
    else:
        sender.const_string("v1", "go" if action_match else "other")
        sender.invoke("Intent.setAction", receiver="v0", args=("v1",))
    sender.const_string("v2", "k")
    sender.invoke("Intent.putExtra", receiver="v0", args=("v2", "v8"))
    sender.invoke("Context.startService", args=("v0",))
    sender.ret()

    recv = MethodBuilder("onStartCommand", params=("p0",))
    recv.const_string("v1", "k")
    recv.invoke("Intent.getStringExtra", receiver="p0", args=("v1",), dest="v2")
    if receiver_leaks:
        recv.invoke("Log.d", args=("v0", "v2"))
    recv.ret()

    apk = Apk(
        Manifest(
            package="pkg",
            components=[
                ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True),
                ComponentDecl(
                    "Recv",
                    ComponentKind.SERVICE,
                    intent_filters=[IntentFilter.for_action("go")],
                ),
            ],
        ),
        DexProgram(
            [
                DexClass("Main", superclass="Activity", methods=[sender.build()]),
                DexClass("Recv", superclass="Service", methods=[recv.build()]),
            ]
        ),
    )
    connected = explicit or action_match
    resource = SOURCE_RESOURCE[source_api]
    leak_expected = tainted and connected and receiver_leaks
    return apk, leak_expected, resource


@given(leak_apps())
@settings(max_examples=60, deadline=None)
def test_static_leak_iff_runtime_leak(case):
    """The detector reports the leak pair exactly when running the app on
    the concrete runtime exfiltrates tagged data to the sink."""
    apk, leak_expected, resource = case

    # Static verdict.
    bundle = extract_bundle([apk])
    report = SeparDetector().detect(bundle)
    static_leak = ("pkg/Main", "pkg/Recv") in report.leak_pairs

    # Dynamic ground truth.
    runtime = AndroidRuntime()
    runtime.install(apk)
    runtime.start_component("pkg/Main")
    dynamic_leak = any(
        resource in effect.detail["taints"]
        for effect in runtime.effects_of_kind("log")
    )

    assert static_leak == leak_expected
    assert dynamic_leak == leak_expected


@given(leak_apps())
@settings(max_examples=20, deadline=None)
def test_detector_agrees_with_sat_synthesis_on_leaks(case):
    """The plain-Python detector and the SAT pipeline agree on whether an
    information-leak scenario exists for the bundle."""
    apk, leak_expected, _ = case
    bundle = extract_bundle([apk])
    detector_says = bool(
        SeparDetector().detect(bundle).components("information_leak")
    )
    separ = Separ(scenarios_per_signature=2)
    result = separ.engine.run(bundle)
    sat_says = any(
        s.vulnerability == "information_leak" for s in result.scenarios
    )
    assert detector_says == sat_says == leak_expected


# ---------------------------------------------------------------------------
# Value analysis vs concrete interpretation on straight-line code
# ---------------------------------------------------------------------------
@st.composite
def straight_line_programs(draw):
    """Random straight-line register programs over const/move/iput/iget."""
    n = draw(st.integers(min_value=1, max_value=10))
    builder = MethodBuilder("onCreate", params=("p0",))
    regs = [f"v{i}" for i in range(4)]
    written = set()
    fields_written = set()
    for i in range(n):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0 or not written:
            reg = draw(st.sampled_from(regs))
            builder.const_string(reg, f"s{i}")
            written.add(reg)
        elif choice == 1:
            src = draw(st.sampled_from(sorted(written)))
            dst = draw(st.sampled_from(regs))
            builder.move(dst, src)
            written.add(dst)
        elif choice == 2:
            src = draw(st.sampled_from(sorted(written)))
            builder.iput("this", "field", src)
            fields_written.add("field")
        elif fields_written:
            dst = draw(st.sampled_from(regs))
            builder.iget(dst, "this", "field")
            written.add(dst)
    final_reg = draw(st.sampled_from(sorted(written)))
    builder.invoke("Log.d", args=("v9", final_reg))
    builder.ret()
    return builder.build(), final_reg


@given(straight_line_programs())
@settings(max_examples=60, deadline=None)
def test_value_analysis_covers_concrete_value(program):
    """For straight-line code, the value analysis' string set at the sink
    instruction contains the concretely observed value (soundness)."""
    method, final_reg = program
    cls = DexClass("Main", superclass="Activity", methods=[method])
    apk = Apk(
        Manifest(
            package="p",
            components=[ComponentDecl("Main", ComponentKind.ACTIVITY, exported=True)],
        ),
        DexProgram([cls]),
    )

    # Concrete execution.
    runtime = AndroidRuntime()
    runtime.install(apk)
    runtime.start_component("p/Main")
    logs = runtime.effects_of_kind("log")
    concrete = logs[0].detail["payload"] if logs else None

    # Static value analysis at the Log.d instruction.
    from repro.statics.callgraph import CallGraph
    from repro.statics.constprop import ValueAnalysis
    from repro.dex.instructions import Invoke

    callgraph = CallGraph(apk)
    values = ValueAnalysis(callgraph)
    sink_index = next(
        i
        for i, instr in enumerate(method.instructions)
        if isinstance(instr, Invoke) and instr.signature == "Log.d"
    )
    predicted = values.strings_of("Main.onCreate", sink_index, final_reg)

    if concrete is not None:
        assert concrete in predicted, (
            f"concrete value {concrete!r} not in predicted set {predicted}"
        )
