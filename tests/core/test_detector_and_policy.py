"""Unit tests for the concrete detector and the policy module."""

import pytest

from repro.android.components import ComponentKind
from repro.android import permissions as perms
from repro.android.resources import Resource
from repro.core.detector import DetectionReport, SeparDetector
from repro.core.model import (
    AppModel,
    BundleModel,
    ComponentModel,
    IntentFilterModel,
    IntentModel,
    PathModel,
    ProviderAccessModel,
)
from repro.core.policy import (
    ECAPolicy,
    IccEvent,
    PolicyAction,
    PolicyEvent,
    derive_policies,
)
from repro.core.vulnerabilities.base import ExploitScenario


def component(name, app, kind=ComponentKind.SERVICE, **kwargs):
    return ComponentModel(name=f"{app}/{name}", kind=kind, app=app, **kwargs)


def bundle_of(*apps):
    return BundleModel(apps=list(apps))


class TestDetectorHijack:
    def make_intent(self, **kwargs):
        defaults = dict(
            entity_id="a:1",
            sender="a/S",
            action="go",
            extras=frozenset({Resource.LOCATION}),
        )
        defaults.update(kwargs)
        return IntentModel(**defaults)

    def detect(self, intent):
        app = AppModel(
            package="a",
            components=[component("S", "a", exported=False)],
            intents=[intent],
        )
        return SeparDetector().detect(bundle_of(app))

    def test_implicit_sensitive_flagged(self):
        report = self.detect(self.make_intent())
        assert "a/S" in report.components("intent_hijack")

    def test_explicit_not_flagged(self):
        report = self.detect(self.make_intent(target="a/T"))
        assert not report.components("intent_hijack")

    def test_actionless_not_flagged(self):
        report = self.detect(self.make_intent(action=None))
        assert not report.components("intent_hijack")

    def test_empty_payload_not_flagged(self):
        report = self.detect(self.make_intent(extras=frozenset()))
        assert not report.components("intent_hijack")

    def test_passive_not_flagged(self):
        report = self.detect(self.make_intent(passive=True))
        assert not report.components("intent_hijack")


class TestDetectorLaunch:
    def detect(self, comp):
        app = AppModel(package="a", components=[comp])
        return SeparDetector().detect(bundle_of(app))

    def test_exported_icc_path_service(self):
        comp = component(
            "S", "a", exported=True,
            paths=(PathModel(Resource.ICC, Resource.SMS),),
        )
        assert "a/S" in self.detect(comp).components("service_launch")

    def test_activity_variant(self):
        comp = component(
            "A", "a", kind=ComponentKind.ACTIVITY, exported=True,
            paths=(PathModel(Resource.ICC, Resource.LOG),),
        )
        assert "a/A" in self.detect(comp).components("activity_launch")

    def test_private_component_safe(self):
        comp = component(
            "S", "a", exported=False,
            paths=(PathModel(Resource.ICC, Resource.SMS),),
        )
        assert not self.detect(comp).components("service_launch")

    def test_non_icc_path_safe(self):
        comp = component(
            "S", "a", exported=True,
            paths=(PathModel(Resource.LOCATION, Resource.SMS),),
        )
        assert not self.detect(comp).components("service_launch")

    def test_unreachable_component_safe(self):
        comp = component(
            "S", "a", exported=True, reachable=False,
            paths=(PathModel(Resource.ICC, Resource.SMS),),
        )
        assert not self.detect(comp).components("service_launch")


class TestDetectorEscalation:
    def detect(self, comp):
        app = AppModel(package="a", components=[comp])
        return SeparDetector().detect(bundle_of(app))

    def base(self, **kwargs):
        defaults = dict(
            exported=True,
            uses_permissions=frozenset({perms.SEND_SMS}),
            paths=(PathModel(Resource.ICC, Resource.SMS),),
        )
        defaults.update(kwargs)
        return component("S", "a", **defaults)

    def test_unenforced_dangerous_flagged(self):
        assert "a/S" in self.detect(self.base()).components(
            "privilege_escalation"
        )

    def test_enforced_safe(self):
        comp = self.base(permissions=frozenset({perms.SEND_SMS}))
        assert not self.detect(comp).components("privilege_escalation")

    def test_normal_level_permission_safe(self):
        comp = self.base(uses_permissions=frozenset({perms.INTERNET}))
        assert not self.detect(comp).components("privilege_escalation")

    def test_no_icc_surface_safe(self):
        comp = self.base(paths=())
        assert not self.detect(comp).components("privilege_escalation")


class TestDetectorLeak:
    def test_cross_app_filter_match(self):
        sender_app = AppModel(
            package="a",
            components=[component("Src", "a", exported=True)],
            intents=[
                IntentModel(
                    entity_id="a:1",
                    sender="a/Src",
                    action="go",
                    extras=frozenset({Resource.IMEI}),
                )
            ],
        )
        sink_app = AppModel(
            package="b",
            components=[
                component(
                    "Dst", "b", exported=True,
                    intent_filters=(
                        IntentFilterModel(actions=frozenset({"go"})),
                    ),
                    paths=(PathModel(Resource.ICC, Resource.NETWORK),),
                )
            ],
        )
        report = SeparDetector().detect(bundle_of(sender_app, sink_app))
        assert ("a/Src", "b/Dst") in report.leak_pairs

    def test_provider_leak_authority_match(self):
        sender_app = AppModel(
            package="a",
            components=[component("Src", "a", exported=True)],
            provider_accesses=[
                ProviderAccessModel(
                    sender="a/Src",
                    operation="insert",
                    authority="b.provider",
                    payload=frozenset({Resource.CONTACTS}),
                )
            ],
        )
        provider_app = AppModel(
            package="b",
            components=[
                component(
                    "Prov", "b", kind=ComponentKind.PROVIDER, exported=True,
                    authority="b.provider",
                    paths=(PathModel(Resource.ICC, Resource.SDCARD),),
                )
            ],
        )
        report = SeparDetector().detect(bundle_of(sender_app, provider_app))
        assert ("a/Src", "b/Prov") in report.leak_pairs

    def test_provider_wrong_authority_safe(self):
        sender_app = AppModel(
            package="a",
            components=[component("Src", "a", exported=True)],
            provider_accesses=[
                ProviderAccessModel(
                    sender="a/Src",
                    operation="insert",
                    authority="other.provider",
                    payload=frozenset({Resource.CONTACTS}),
                )
            ],
        )
        provider_app = AppModel(
            package="b",
            components=[
                component(
                    "Prov", "b", kind=ComponentKind.PROVIDER, exported=True,
                    authority="b.provider",
                    paths=(PathModel(Resource.ICC, Resource.SDCARD),),
                )
            ],
        )
        report = SeparDetector().detect(bundle_of(sender_app, provider_app))
        assert not report.leak_pairs


class TestDetectionReport:
    def test_apps_projection(self):
        report = DetectionReport()
        report.add("intent_hijack", "pkg.x/Cmp")
        report.add("intent_hijack", "pkg.x/Other")
        report.add("intent_hijack", "pkg.y/Cmp")
        assert report.apps("intent_hijack") == {"pkg.x", "pkg.y"}

    def test_unknown_vulnerability_empty(self):
        assert DetectionReport().components("nope") == set()


class TestPolicyDerivation:
    def test_unknown_vulnerability_skipped(self):
        scenario = ExploitScenario(vulnerability="mystery", roles={})
        assert derive_policies([scenario], BundleModel()) == []

    def test_launch_policy_shape(self):
        scenario = ExploitScenario(
            vulnerability="service_launch",
            roles={"victim": "a/S"},
            intent={"extras": frozenset({Resource.LOCATION})},
        )
        [policy] = derive_policies([scenario], BundleModel())
        assert policy.event is PolicyEvent.ICC_RECEIVE
        assert policy.receiver == "a/S"
        assert policy.extras_any == {Resource.LOCATION}
        assert policy.action is PolicyAction.PROMPT

    def test_duplicate_scenarios_one_policy(self):
        scenario = ExploitScenario(
            vulnerability="service_launch",
            roles={"victim": "a/S"},
            intent={"extras": frozenset({Resource.LOCATION})},
        )
        assert len(derive_policies([scenario, scenario], BundleModel())) == 1

    def test_escalation_policy_shape(self):
        scenario = ExploitScenario(
            vulnerability="privilege_escalation",
            roles={"victim": "a/S", "escalated_permission": perms.SEND_SMS},
        )
        [policy] = derive_policies([scenario], BundleModel())
        assert policy.sender_lacks_permission == perms.SEND_SMS

    def test_incomplete_scenario_skipped(self):
        scenario = ExploitScenario(
            vulnerability="privilege_escalation", roles={"victim": "a/S"}
        )
        assert derive_policies([scenario], BundleModel()) == []


class TestIccEvent:
    def test_sender_app(self):
        event = IccEvent(sender="pkg.a/Cmp", receiver=None)
        assert event.sender_app == "pkg.a"

    def test_policy_event_mismatch(self):
        policy = ECAPolicy(
            event=PolicyEvent.ICC_SEND, vulnerability="x", sender="a/S"
        )
        event = IccEvent(sender="a/S", receiver="b/T")
        assert not policy.matches(PolicyEvent.ICC_RECEIVE, event)

    def test_unresolved_receiver_never_violates_allowlist(self):
        policy = ECAPolicy(
            event=PolicyEvent.ICC_SEND,
            vulnerability="intent_hijack",
            sender="a/S",
            allowed_receivers=frozenset({"a/T"}),
        )
        event = IccEvent(sender="a/S", receiver=None)
        assert not policy.matches(PolicyEvent.ICC_SEND, event)
