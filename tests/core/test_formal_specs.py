"""Direct tests for the formal layer: framework meta-model, app embedding,
and the synthesis engine's mechanics."""

import pytest

from repro.android.components import ComponentKind
from repro.android.resources import Resource, SINKS, SOURCES
from repro.benchsuite.running_example import build_app1, build_app2
from repro.core.app_to_spec import BundleSpec
from repro.core.framework_spec import (
    AndroidFrameworkSpec,
    action_atom,
    resource_atom,
)
from repro.core.model import (
    AppModel,
    BundleModel,
    ComponentModel,
    IntentFilterModel,
    IntentModel,
    PathModel,
)
from repro.core.synthesis import AnalysisAndSynthesisEngine
from repro.core.vulnerabilities import (
    IntentHijackSignature,
    ServiceLaunchSignature,
    default_signatures,
    lookup,
    register,
    registered,
)
from repro.core.vulnerabilities.base import VulnerabilitySignature
from repro.relational import ast as rast
from repro.statics import extract_bundle


class TestFrameworkSpec:
    def test_resource_atoms_classified(self):
        fw = AndroidFrameworkSpec()
        bounds, _ = fw.module.build()
        source_atoms = {t[0] for t in bounds.lower(fw.source_resources.relation)}
        sink_atoms = {t[0] for t in bounds.lower(fw.sink_resources.relation)}
        assert source_atoms == {resource_atom(r) for r in SOURCES}
        assert sink_atoms == {resource_atom(r) for r in SINKS}
        assert resource_atom(Resource.ICC) in source_atoms & sink_atoms

    def test_meta_model_satisfiable_empty(self):
        """The bare meta-model admits the empty instance."""
        fw = AndroidFrameworkSpec()
        problem = fw.module.solve_problem()
        assert problem.solve() is not None

    def test_filter_ownership_fact(self):
        """A free IntentFilter atom must attach to exactly one component."""
        fw = AndroidFrameworkSpec()
        # A filter needs at least one action (some-multiplicity): give the
        # universe an action atom to pick.
        fw.module.one_sig(action_atom("test"), extends=fw.action)
        problem = fw.module.solve_problem(
            extra={fw.intent_filter: 1, fw.service: 1, fw.application: 1}
        )
        instance = problem.solve()
        assert instance is not None
        owners = [
            t for t in instance.tuples(fw.cmp_filters.relation)
            if t[1] == "IntentFilter$0"
        ]
        assert len(owners) == 1

    def test_no_filters_on_providers_fact(self):
        """A free filter cannot attach to a Provider: with only a Provider
        atom available to own it, the model is unsatisfiable."""
        fw = AndroidFrameworkSpec()
        problem = fw.module.solve_problem(
            extra={fw.intent_filter: 1, fw.provider: 1, fw.application: 1}
        )
        assert problem.solve() is None

    def test_pin_validation_eager(self):
        fw = AndroidFrameworkSpec()
        provider = fw.module.one_sig("pkg_Prov", extends=fw.provider)
        with pytest.raises(ValueError):
            fw.module.pin(fw.cmp_app, provider, [])  # 'one' needs a value


class TestBundleSpec:
    @pytest.fixture(scope="class")
    def bundle(self):
        return extract_bundle([build_app1(), build_app2()])

    def test_every_component_embedded(self, bundle):
        spec = BundleSpec(bundle)
        for comp in bundle.all_components():
            assert comp.name in spec.component_sigs

    def test_every_intent_embedded(self, bundle):
        spec = BundleSpec(bundle)
        for intent in bundle.all_intents():
            assert intent.entity_id in spec.intent_sigs

    def test_device_apps_pinned(self, bundle):
        spec = BundleSpec(bundle)
        bounds, _ = spec.module.build()
        installed = {t[1] for t in bounds.lower(spec.fw.dev_apps.relation)}
        assert installed == {a.package for a in bundle.apps}

    def test_pinned_model_satisfiable(self, bundle):
        """The embedded bundle admits an instance (consistency of the
        extracted facts with the framework facts)."""
        spec = BundleSpec(bundle)
        problem = spec.module.solve_problem()
        assert problem.solve() is not None

    def test_intent_attributes_roundtrip(self, bundle):
        spec = BundleSpec(bundle)
        problem = spec.module.solve_problem()
        instance = problem.solve()
        [hijackable] = [
            i for i in bundle.all_intents() if i.sender.endswith("LocationFinder")
        ]
        attrs = spec.intent_attributes(instance, hijackable.entity_id)
        assert attrs["action"] == "showLoc"
        assert attrs["sender"] == hijackable.sender
        assert Resource.LOCATION in attrs["extras"]
        assert attrs["receiver"] is None

    def test_matching_bundle_receivers(self, bundle):
        spec = BundleSpec(bundle)
        [hijackable] = [
            i for i in bundle.all_intents() if i.sender.endswith("LocationFinder")
        ]
        assert spec.matching_bundle_receivers(hijackable) == [
            "com.example.navigation/RouteFinder"
        ]

    def test_absent_sender_intent_skipped(self):
        """Intents whose sender component is not modeled are dropped from
        the embedding rather than crashing it."""
        app = AppModel(
            package="a",
            components=[],
            intents=[IntentModel(entity_id="a:1", sender="a/Ghost")],
        )
        spec = BundleSpec(BundleModel(apps=[app]))
        assert "a:1" not in spec.intent_sigs


class TestSynthesisEngine:
    @pytest.fixture(scope="class")
    def bundle(self):
        return extract_bundle([build_app1(), build_app2()])

    def test_empty_bundle_no_scenarios(self):
        engine = AnalysisAndSynthesisEngine(scenarios_per_signature=2)
        result = engine.run(BundleModel())
        assert result.scenarios == []

    def test_single_signature_runs(self, bundle):
        engine = AnalysisAndSynthesisEngine(
            signatures=[ServiceLaunchSignature()], scenarios_per_signature=4
        )
        result = engine.run(bundle)
        assert all(s.vulnerability == "service_launch" for s in result.scenarios)
        assert result.stats.per_signature["service_launch"]["scenarios"] >= 1

    def test_diversity_yields_distinct_victims(self, bundle):
        engine = AnalysisAndSynthesisEngine(
            signatures=[ServiceLaunchSignature()], scenarios_per_signature=8
        )
        result = engine.run(bundle)
        victims = [s.roles["victim"] for s in result.scenarios]
        assert len(victims) == len(set(victims))

    def test_non_minimal_mode(self, bundle):
        engine = AnalysisAndSynthesisEngine(
            signatures=[IntentHijackSignature()],
            scenarios_per_signature=2,
            minimal=False,
        )
        result = engine.run(bundle)
        assert result.scenarios

    def test_by_vulnerability_grouping(self, bundle):
        engine = AnalysisAndSynthesisEngine(scenarios_per_signature=2)
        result = engine.run(bundle)
        grouped = result.by_vulnerability()
        for vuln, scenarios in grouped.items():
            assert all(s.vulnerability == vuln for s in scenarios)

    def test_vulnerable_apps_projection(self, bundle):
        engine = AnalysisAndSynthesisEngine(scenarios_per_signature=4)
        result = engine.run(bundle)
        assert "com.example.messenger" in result.vulnerable_apps("service_launch")
        assert result.vulnerable_apps("nonexistent") == []


class TestRegistry:
    def test_builtins_registered(self):
        names = set(registered())
        assert {
            "intent_hijack",
            "activity_launch",
            "service_launch",
            "information_leak",
            "privilege_escalation",
        } <= names

    def test_lookup(self):
        assert lookup("intent_hijack") is IntentHijackSignature

    def test_default_signatures_fresh_instances(self):
        a = default_signatures()
        b = default_signatures()
        assert {type(x) for x in a} == {type(x) for x in b}
        assert all(x is not y for x, y in zip(a, b))

    def test_register_rejects_abstract_name(self):
        class Nameless(VulnerabilitySignature):
            def instantiate(self, spec):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            register(Nameless)

    def test_register_rejects_conflict(self):
        class Impostor(VulnerabilitySignature):
            name = "intent_hijack"

            def instantiate(self, spec):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValueError):
            register(Impostor)
