"""Tests for the bytecode IR: instructions, programs, and the builder."""

import pytest

from repro.dex import (
    ConstString,
    DexClass,
    DexMethod,
    DexProgram,
    Goto,
    If,
    Invoke,
    MethodBuilder,
    Move,
    Return,
)
from repro.dex.instructions import defined_register, used_registers


class TestInstructions:
    def test_invoke_signature_parts(self):
        inv = Invoke("Intent.setAction", receiver="v0", args=("v1",))
        assert inv.class_name == "Intent"
        assert inv.method_name == "setAction"

    def test_defined_register(self):
        assert defined_register(ConstString("v0", "x")) == "v0"
        assert defined_register(Move("v1", "v0")) == "v1"
        assert defined_register(Invoke("A.b", dest="v2")) == "v2"
        assert defined_register(Return("v0")) is None

    def test_used_registers(self):
        inv = Invoke("A.b", receiver="v0", args=("v1", "v2"))
        assert used_registers(inv) == ("v0", "v1", "v2")
        assert used_registers(Move("a", "b")) == ("b",)
        assert used_registers(Return()) == ()


class TestMethodValidation:
    def test_branch_target_bounds(self):
        with pytest.raises(ValueError):
            DexMethod("m", instructions=[Goto(99)])

    def test_valid_branch(self):
        m = DexMethod("m", instructions=[If("v0", 2), Return(), Return()])
        assert m.instructions[0].target == 2

    def test_entry_point_detection(self):
        m = DexMethod("onStartCommand", params=("p0",))
        assert m.is_entry_point and m.receives_intent
        helper = DexMethod("helper")
        assert not helper.is_entry_point

    def test_provider_entry_no_intent(self):
        m = DexMethod("query", params=("p0",))
        assert m.is_entry_point and not m.receives_intent


class TestClassAndProgram:
    def test_duplicate_method_rejected(self):
        with pytest.raises(ValueError):
            DexClass("C", methods=[DexMethod("m"), DexMethod("m")])

    def test_method_class_name_backref(self):
        cls = DexClass("C", methods=[DexMethod("m")])
        assert cls.method("m").qualified_name == "C.m"

    def test_program_lookup(self):
        prog = DexProgram([DexClass("C", methods=[DexMethod("m")])])
        assert prog.lookup("C.m") is not None
        assert prog.lookup("C.nope") is None
        assert prog.lookup("D.m") is None

    def test_duplicate_class_rejected(self):
        with pytest.raises(ValueError):
            DexProgram([DexClass("C"), DexClass("C")])

    def test_add_class_and_count(self):
        prog = DexProgram()
        cls = DexClass("C")
        cls.add_method(MethodBuilder("m").const_string("v0", "s").ret().build())
        prog.add_class(cls)
        assert prog.instruction_count() == 2  # const + implicit return


class TestBuilder:
    def test_implicit_return_added(self):
        m = MethodBuilder("m").const_string("v0", "x").build()
        assert isinstance(m.instructions[-1], Return)

    def test_explicit_return_not_duplicated(self):
        m = MethodBuilder("m").ret("v0").build()
        assert len(m.instructions) == 1

    def test_forward_label(self):
        m = (
            MethodBuilder("m")
            .if_goto("v0", "end")
            .const_string("v1", "skipped")
            .label("end")
            .ret()
            .build()
        )
        assert m.instructions[0].target == 2

    def test_backward_label_loop(self):
        m = (
            MethodBuilder("m")
            .label("top")
            .const_string("v0", "x")
            .if_goto("v1", "top")
            .ret()
            .build()
        )
        assert m.instructions[1].target == 0

    def test_undefined_label_rejected(self):
        builder = MethodBuilder("m").goto("nowhere")
        with pytest.raises(ValueError):
            builder.build()

    def test_duplicate_label_rejected(self):
        builder = MethodBuilder("m").label("l")
        with pytest.raises(ValueError):
            builder.label("l")

    def test_fluent_chain_produces_expected_sequence(self):
        m = (
            MethodBuilder("onStartCommand", params=("p0",))
            .new_instance("v0", "Intent")
            .const_string("v1", "showLoc")
            .invoke("Intent.setAction", receiver="v0", args=("v1",))
            .invoke("Context.startService", args=("v0",))
            .ret()
            .build()
        )
        kinds = [type(i).__name__ for i in m.instructions]
        assert kinds == ["NewInstance", "ConstString", "Invoke", "Invoke", "Return"]
