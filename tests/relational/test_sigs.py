"""Tests for the Alloy-style signature frontend, including the paper's
Figure 4 example (Application/Component with the ownership fact)."""

import pytest

from repro.relational import ast as rast
from repro.relational.sigs import Module


def app_component_module():
    m = Module()
    application = m.sig("Application")
    component = m.sig("Component")
    cmps = m.field(application, "cmps", component, mult="set")
    return m, application, component, cmps


class TestFig4:
    """Reproduces the paper's Alloy walkthrough (Section V, Fig. 4)."""

    def test_instances_without_ownership_fact(self):
        """`some Component` for scope 2 admits orphan components (Fig 4a)."""
        m, application, component, cmps = app_component_module()
        problem = m.solve_problem(
            rast.some(component.expr), extra={application: 1, component: 2}
        )
        instances = list(problem.solutions())
        assert instances, "expected satisfiable"
        # Some instance must have a component not owned by any application
        # (Fig 4a) -- i.e., cmps misses a component atom.
        orphan_found = any(
            len({t[1] for t in inst.tuples(cmps.relation)}) < 2
            for inst in instances
        )
        assert orphan_found

    def test_ownership_fact_eliminates_orphans(self):
        """fact: all c: Component | one c.~cmps  (Fig 4b survives)."""
        m, application, component, cmps = app_component_module()
        c = rast.Variable("c")
        m.fact(
            rast.all_(
                c, component.expr, rast.one(c.join(cmps.expr.transpose()))
            )
        )
        problem = m.solve_problem(
            rast.some(component.expr), extra={application: 2, component: 2}
        )
        for inst in problem.solutions():
            owners = {}
            for app_atom, cmp_atom in inst.tuples(cmps.relation):
                owners.setdefault(cmp_atom, set()).add(app_atom)
            component_atoms = inst.atoms(component.relation)
            for cmp_atom in component_atoms:
                assert len(owners.get(cmp_atom, ())) == 1


class TestHierarchy:
    def test_abstract_sig_is_union_of_children(self):
        m = Module()
        component = m.sig("Component", abstract=True)
        activity = m.sig("Activity", extends=component)
        service = m.sig("Service", extends=component)
        m.one_sig("Act1", extends=activity)
        m.one_sig("Svc1", extends=service)
        bounds, _ = m.build()
        assert set(bounds.lower(component.relation)) == {("Act1",), ("Svc1",)}

    def test_extra_atoms(self):
        m = Module()
        component = m.sig("Component", abstract=True)
        activity = m.sig("Activity", extends=component)
        m.one_sig("Act1", extends=activity)
        bounds, _ = m.build(extra={activity: 2})
        atoms = {t[0] for t in bounds.lower(activity.relation)}
        assert atoms == {"Act1", "Activity$0", "Activity$1"}

    def test_extra_on_abstract_rejected(self):
        m = Module()
        component = m.sig("Component", abstract=True)
        with pytest.raises(ValueError):
            m.build(extra={component: 1})

    def test_extra_on_one_sig_rejected(self):
        m = Module()
        s = m.one_sig("S")
        with pytest.raises(ValueError):
            m.build(extra={s: 1})

    def test_duplicate_sig_rejected(self):
        m = Module()
        m.sig("S")
        with pytest.raises(ValueError):
            m.sig("S")
        with pytest.raises(ValueError):
            m.one_sig("S")

    def test_atoms_of_after_build(self):
        m = Module()
        s = m.sig("S")
        m.one_sig("X", extends=s)
        m.build(extra={s: 1})
        assert set(m.atoms_of(s)) == {"X", "S$0"}


class TestFieldMultiplicity:
    def test_one_field_enforced_on_free_atoms(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        m.one_sig("B1", extends=b)
        m.one_sig("B2", extends=b)
        f = m.field(a, "f", b, mult="one")
        problem = m.solve_problem(extra={a: 2})
        instance = problem.solve()
        rows = {}
        for owner, value in instance.tuples(f.relation):
            rows.setdefault(owner, []).append(value)
        for owner_atom in ("A$0", "A$1"):
            assert len(rows.get(owner_atom, [])) == 1

    def test_lone_field(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        m.one_sig("B1", extends=b)
        f = m.field(a, "f", b, mult="lone")
        problem = m.solve_problem(extra={a: 1})
        for inst in problem.solutions():
            assert len(inst.tuples(f.relation)) <= 1

    def test_some_field(self):
        m = Module()
        a = m.sig("A")
        b = m.sig("B")
        m.one_sig("B1", extends=b)
        f = m.field(a, "f", b, mult="some")
        instance = m.solve_problem(extra={a: 1}).solve()
        assert len(instance.tuples(f.relation)) == 1


class TestPins:
    def make(self):
        m = Module()
        cmp_ = m.sig("Component", abstract=True)
        svc = m.sig("Service", extends=cmp_)
        app = m.sig("Application")
        a1 = m.one_sig("App1", extends=app)
        s1 = m.one_sig("Svc1", extends=svc)
        f = m.field(cmp_, "app", app, mult="one")
        return m, svc, app, a1, s1, f

    def test_pin_fixes_value(self):
        m, svc, app, a1, s1, f = self.make()
        m.pin(f, s1, ["App1"])
        instance = m.solve_problem().solve()
        assert instance.tuples(f.relation) == {("Svc1", "App1")}

    def test_pin_multiplicity_validated(self):
        m, svc, app, a1, s1, f = self.make()
        with pytest.raises(ValueError):
            m.pin(f, s1, [])  # 'one' field needs exactly one value

    def test_pin_requires_one_sig(self):
        m, svc, app, a1, s1, f = self.make()
        with pytest.raises(ValueError):
            m.pin(f, svc, ["App1"])

    def test_duplicate_pin_rejected(self):
        m, svc, app, a1, s1, f = self.make()
        m.pin(f, s1, ["App1"])
        m.build()  # single pin is fine
        m2, svc2, app2, a2, s2, f2 = self.make()
        m2.pin(f2, s2, ["App1"])
        m2.pin(f2, s2, ["App1"])
        with pytest.raises(ValueError):
            m2.build()

    def test_pinned_rows_cost_no_variables(self):
        m, svc, app, a1, s1, f = self.make()
        m.pin(f, s1, ["App1"])
        problem = m.solve_problem()
        assert problem.stats.num_primary_vars == 0
