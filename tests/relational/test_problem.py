"""Tests for relational solving, enumeration, and Aluminum minimization."""

import itertools

import pytest

from repro.relational import Universe, Relation, Bounds, RelationalProblem
from repro.relational import ast as rast
from repro.relational.universe import products


def make_free_unary(atoms):
    universe = Universe(atoms)
    bounds = Bounds(universe)
    r = Relation("r", 1)
    bounds.bound(r, [], [(a,) for a in atoms])
    return universe, bounds, r


class TestSolve:
    def test_some_free_relation(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.some(r.to_expr()))
        instance = problem.solve()
        assert instance is not None
        assert len(instance.tuples(r)) >= 1

    def test_unsat_contradiction(self):
        _, bounds, r = make_free_unary(["a", "b"])
        formula = rast.some(r.to_expr()) & rast.no(r.to_expr())
        assert RelationalProblem(bounds, formula).solve() is None

    def test_exact_cardinality_via_one(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.one(r.to_expr()))
        instance = problem.solve()
        assert len(instance.tuples(r)) == 1

    def test_lower_bound_respected(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound(r, [("a",)], [("a",), ("b",)])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        instance = problem.solve()
        assert ("a",) in instance.tuples(r)

    def test_stats_populated(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.some(r.to_expr()))
        problem.solve()
        assert problem.stats.num_primary_vars == 3
        assert problem.stats.translation_seconds >= 0.0


class TestEnumeration:
    def test_counts_all_subsets(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.some(r.to_expr()))
        found = list(problem.solutions())
        assert len(found) == 7  # non-empty subsets of a 3-atom set

    def test_distinct_instances(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        found = [frozenset(i.tuples(r)) for i in problem.solutions()]
        assert len(found) == len(set(found)) == 8

    def test_limit(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        assert len(list(problem.solutions(limit=3))) == 3

    def test_unsat_enumeration_empty(self):
        _, bounds, r = make_free_unary(["a"])
        formula = rast.some(r.to_expr()) & rast.no(r.to_expr())
        assert list(RelationalProblem(bounds, formula).solutions()) == []


class TestMinimal:
    def test_minimal_solutions_are_singletons(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.some(r.to_expr()))
        minima = list(problem.minimal_solutions())
        assert len(minima) == 3
        for instance in minima:
            assert len(instance.tuples(r)) == 1

    def test_minimal_with_forced_pairs(self):
        """r must contain a and (b or c): minima are {a,b} and {a,c}."""
        universe = Universe(["a", "b", "c"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound(r, [], [(x,) for x in "abc"])
        a_in = rast.RelationExpr(r)  # subset test via singleton sigs
        # Encode membership with exact-bound helper relations.
        sa, sb, sc = (Relation(f"s{x}", 1) for x in "abc")
        bounds.bound_exact(sa, [("a",)])
        bounds.bound_exact(sb, [("b",)])
        bounds.bound_exact(sc, [("c",)])
        formula = rast.some(sa.to_expr() & a_in) & (
            rast.some(sb.to_expr() & a_in) | rast.some(sc.to_expr() & a_in)
        )
        problem = RelationalProblem(bounds, formula)
        minima = [frozenset(i.atoms(r)) for i in problem.minimal_solutions()]
        assert sorted(minima, key=sorted) == [
            frozenset({"a", "b"}),
            frozenset({"a", "c"}),
        ]

    def test_empty_instance_short_circuits(self):
        _, bounds, r = make_free_unary(["a", "b"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        minima = list(problem.minimal_solutions())
        assert len(minima) == 1
        assert not minima[0].tuples(r)

    def test_later_minima_not_supersets(self):
        _, bounds, r = make_free_unary(["a", "b", "c", "d"])
        problem = RelationalProblem(bounds, rast.some(r.to_expr()))
        minima = [frozenset(i.atoms(r)) for i in problem.minimal_solutions()]
        for i, early in enumerate(minima):
            for late in minima[i + 1:]:
                assert not early <= late


class TestBinaryProblems:
    def test_function_synthesis(self):
        """Find a total function f: dom -> cod as a binary relation."""
        universe = Universe(["d0", "d1", "c0", "c1"])
        bounds = Bounds(universe)
        dom = Relation("dom", 1)
        cod = Relation("cod", 1)
        f = Relation("f", 2)
        bounds.bound_exact(dom, [("d0",), ("d1",)])
        bounds.bound_exact(cod, [("c0",), ("c1",)])
        bounds.bound(f, [], products([["d0", "d1"], ["c0", "c1"]]))
        x = rast.Variable("x")
        total = rast.all_(x, dom.to_expr(), rast.one(x.join(f.to_expr())))
        problem = RelationalProblem(bounds, total)
        instance = problem.solve()
        tuples = instance.tuples(f)
        assert len(tuples) == 2
        assert {t[0] for t in tuples} == {"d0", "d1"}

    def test_injective_function_count(self):
        universe = Universe(["d0", "d1", "c0", "c1"])
        bounds = Bounds(universe)
        dom = Relation("dom", 1)
        f = Relation("f", 2)
        bounds.bound_exact(dom, [("d0",), ("d1",)])
        bounds.bound(f, [], products([["d0", "d1"], ["c0", "c1"]]))
        x = rast.Variable("x")
        y = rast.Variable("y")
        total = rast.all_(x, dom.to_expr(), rast.one(x.join(f.to_expr())))
        injective = rast.all_(
            x,
            dom.to_expr(),
            rast.all_(
                y,
                dom.to_expr(),
                rast.some(x.join(f.to_expr()) & y.join(f.to_expr())).implies(
                    x.eq(y)
                ),
            ),
        )
        problem = RelationalProblem(bounds, total & injective)
        assert len(list(problem.solutions())) == 2  # the two bijections

    def test_transitive_closure_reachability(self):
        """next = a->b, b->c; require d reachable from a: UNSAT."""
        universe = Universe(["a", "b", "c", "d"])
        bounds = Bounds(universe)
        nxt = Relation("next", 2)
        start = Relation("start", 1)
        target = Relation("target", 1)
        bounds.bound_exact(nxt, [("a", "b"), ("b", "c")])
        bounds.bound_exact(start, [("a",)])
        bounds.bound_exact(target, [("d",)])
        reach = start.to_expr().join(nxt.to_expr().closure())
        problem = RelationalProblem(
            bounds, target.to_expr().in_(reach)
        )
        assert problem.solve() is None
        # but c is reachable
        bounds2 = Bounds(universe)
        bounds2.bound_exact(nxt, [("a", "b"), ("b", "c")])
        bounds2.bound_exact(start, [("a",)])
        bounds2.bound_exact(target, [("c",)])
        problem2 = RelationalProblem(
            bounds2, target.to_expr().in_(reach)
        )
        assert problem2.solve() is not None
