"""Edge-case coverage for the relational engine: conditional expressions,
disjointness, subset-sig pins, arity validation, and enumeration corners."""

import pytest

from repro.relational import Universe, Relation, Bounds, RelationalProblem
from repro.relational import ast as rast
from repro.relational.sigs import Module
from repro.relational.translate import Translator
from repro.sat import tseitin as ts


class TestIfExpr:
    def test_condition_selects_branch(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        flag = Relation("flag", 1)
        left = Relation("left", 1)
        right = Relation("right", 1)
        out = Relation("out", 1)
        bounds.bound(flag, [], [("a",)])  # solver chooses
        bounds.bound_exact(left, [("a",)])
        bounds.bound_exact(right, [("b",)])
        bounds.bound(out, [], [("a",), ("b",)])
        chosen = rast.ite_expr(
            rast.some(flag.to_expr()), left.to_expr(), right.to_expr()
        )
        problem = RelationalProblem(
            bounds, out.to_expr().eq(chosen) & rast.some(flag.to_expr())
        )
        instance = problem.solve()
        assert instance.atoms(out) == {"a"}
        problem2 = RelationalProblem(
            bounds, out.to_expr().eq(chosen) & rast.no(flag.to_expr())
        )
        instance2 = problem2.solve()
        assert instance2.atoms(out) == {"b"}

    def test_branch_arity_mismatch_rejected(self):
        r1 = Relation("r1", 1)
        r2 = Relation("r2", 2)
        with pytest.raises(ValueError):
            rast.IfExpr(rast.TRUE_F, r1.to_expr(), r2.to_expr())


class TestAstValidation:
    def test_union_arity_mismatch(self):
        with pytest.raises(ValueError):
            Relation("a", 1).to_expr() + Relation("b", 2).to_expr()

    def test_join_of_unaries_rejected(self):
        with pytest.raises(ValueError):
            Relation("a", 1).to_expr().join(Relation("b", 1).to_expr())

    def test_closure_requires_binary(self):
        with pytest.raises(ValueError):
            Relation("a", 1).to_expr().closure()

    def test_comparison_arity_mismatch(self):
        with pytest.raises(ValueError):
            Relation("a", 1).to_expr().eq(Relation("b", 2).to_expr())

    def test_quantifier_bound_must_be_unary(self):
        v = rast.Variable("v")
        with pytest.raises(ValueError):
            rast.all_(v, Relation("b", 2).to_expr(), rast.TRUE_F)

    def test_unknown_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            rast.MultiplicityFormula("many", Relation("a", 1).to_expr())

    def test_disjoint_helper(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        r1, r2 = Relation("r1", 1), Relation("r2", 1)
        bounds.bound(r1, [], [("a",), ("b",)])
        bounds.bound(r2, [], [("a",), ("b",)])
        formula = (
            rast.disjoint([r1.to_expr(), r2.to_expr()])
            & rast.some(r1.to_expr())
            & rast.some(r2.to_expr())
        )
        instance = RelationalProblem(bounds, formula).solve()
        assert instance is not None
        assert not (instance.atoms(r1) & instance.atoms(r2))


class TestTranslatorErrors:
    def test_unbound_relation_rejected(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        translator = Translator(bounds)
        with pytest.raises(KeyError):
            translator.evaluate(Relation("ghost", 1).to_expr())

    def test_unbound_variable_rejected(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        translator = Translator(bounds)
        with pytest.raises(KeyError):
            translator.evaluate(rast.Variable("loose"))

    def test_universe_constants(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        translator = Translator(bounds)
        univ = translator.evaluate(rast.UNIV)
        iden = translator.evaluate(rast.IDEN)
        none = translator.evaluate(rast.NONE)
        assert len(univ.entries) == 2
        assert set(iden.entries) == {(0, 0), (1, 1)}
        assert not none.entries


class TestSubsetSigs:
    def test_pin_conflict_rejected(self):
        m = Module()
        s = m.sig("S")
        m.one_sig("X", extends=s)
        sub = m.subset_sig("Sub", s)
        sub.pin("X", True)
        with pytest.raises(ValueError):
            sub.pin("X", False)

    def test_pin_outside_parent_rejected(self):
        m = Module()
        s = m.sig("S")
        t = m.sig("T")
        m.one_sig("X", extends=t)
        sub = m.subset_sig("Sub", s)
        sub.pin("X", True)
        with pytest.raises(ValueError):
            m.build()

    def test_unpinned_membership_solver_chosen(self):
        m = Module()
        s = m.sig("S")
        m.one_sig("X", extends=s)
        sub = m.subset_sig("Sub", s)
        problem = m.solve_problem()
        memberships = set()
        for inst in problem.solutions():
            memberships.add(frozenset(inst.atoms(sub.relation)))
        assert memberships == {frozenset(), frozenset({"X"})}

    def test_subset_name_collision_rejected(self):
        m = Module()
        s = m.sig("S")
        with pytest.raises(ValueError):
            m.subset_sig("S", s)


class TestEnumerationCorners:
    def test_zero_limit(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound(r, [], [("a",)])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        assert list(problem.solutions(limit=0)) == []

    def test_fully_pinned_problem_single_solution(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound_exact(r, [("a",)])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        solutions = list(problem.solutions())
        assert len(solutions) == 1

    def test_block_on_pinned_tuples_exhausts(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound_exact(r, [("a",)])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        assert problem.solve() is not None
        # Blocking a lower-bound tuple is impossible: enumeration is done.
        assert problem.block([(r, ("a",))]) is False

    def test_minimal_solution_unsat(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound(r, [], [("a",)])
        problem = RelationalProblem(
            bounds, rast.some(r.to_expr()) & rast.no(r.to_expr())
        )
        assert problem.minimal_solution() is None

    def test_minimal_respects_lower_bounds(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound(r, [("a",)], [("a",), ("b",)])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        instance = problem.minimal_solution()
        assert instance.atoms(r) == {"a"}  # lower kept, free tuple dropped


class TestInstanceApi:
    def test_describe_and_positive_size(self):
        universe = Universe(["a", "b"])
        bounds = Bounds(universe)
        r = Relation("edge", 2)
        bounds.bound_exact(r, [("a", "b")])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        instance = problem.solve()
        assert instance.positive_size() == 1
        assert "edge = {a->b}" in instance.describe()

    def test_instance_equality_and_hash(self):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound_exact(r, [("a",)])
        p1 = RelationalProblem(bounds, rast.TRUE_F)
        p2 = RelationalProblem(bounds, rast.TRUE_F)
        i1, i2 = p1.solve(), p2.solve()
        assert i1 == i2
        assert hash(i1) == hash(i2)
