"""Property-based semantics tests for the relational translator.

Strategy: build relations with *exact* bounds (constant contents).  Every
expression then evaluates to a constant matrix and every formula folds to
the TRUE/FALSE circuit constant, which we compare against a straightforward
set-theoretic reference evaluator.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.relational import Universe, Relation, Bounds
from repro.relational import ast as rast
from repro.relational.translate import Translator
from repro.sat import tseitin as ts

ATOMS = ["a0", "a1", "a2", "a3"]


# ---------------------------------------------------------------------------
# Reference semantics over plain Python sets
# ---------------------------------------------------------------------------
def ref_join(left, right):
    return {
        l[:-1] + r[1:] for l in left for r in right if l[-1] == r[0]
    }


def ref_closure(rel):
    result = set(rel)
    while True:
        extra = ref_join(result, result) - result
        if not extra:
            return result
        result |= extra


def ref_eval(expr, contents, env):
    if isinstance(expr, rast.RelationExpr):
        return contents[expr.relation]
    if isinstance(expr, rast.Variable):
        return {(env[expr],)}
    if isinstance(expr, rast.ConstantExpr):
        if expr.kind == "none":
            return set()
        if expr.kind == "univ":
            return {(a,) for a in ATOMS}
        return {(a, a) for a in ATOMS}
    if isinstance(expr, rast.BinaryExpr):
        left = ref_eval(expr.left, contents, env)
        right = ref_eval(expr.right, contents, env)
        if expr.op == "union":
            return left | right
        if expr.op == "intersection":
            return left & right
        return left - right
    if isinstance(expr, rast.JoinExpr):
        return ref_join(
            ref_eval(expr.left, contents, env), ref_eval(expr.right, contents, env)
        )
    if isinstance(expr, rast.ProductExpr):
        left = ref_eval(expr.left, contents, env)
        right = ref_eval(expr.right, contents, env)
        return {l + r for l in left for r in right}
    if isinstance(expr, rast.UnaryExpr):
        operand = ref_eval(expr.operand, contents, env)
        if expr.op == "transpose":
            return {(b, a) for a, b in operand}
        closed = ref_closure(operand)
        if expr.op == "closure":
            return closed
        return closed | {(a, a) for a in ATOMS}
    raise TypeError(type(expr))


def ref_formula(formula, contents, env):
    if isinstance(formula, rast.TrueFormula):
        return True
    if isinstance(formula, rast.FalseFormula):
        return False
    if isinstance(formula, rast.NotFormula):
        return not ref_formula(formula.operand, contents, env)
    if isinstance(formula, rast.NaryFormula):
        results = [ref_formula(f, contents, env) for f in formula.operands]
        return all(results) if formula.op == "and" else any(results)
    if isinstance(formula, rast.ComparisonFormula):
        left = ref_eval(formula.left, contents, env)
        right = ref_eval(formula.right, contents, env)
        return left <= right if formula.op == "subset" else left == right
    if isinstance(formula, rast.MultiplicityFormula):
        size = len(ref_eval(formula.expr, contents, env))
        return {
            "some": size >= 1,
            "no": size == 0,
            "one": size == 1,
            "lone": size <= 1,
        }[formula.mult]
    if isinstance(formula, rast.QuantifiedFormula):
        domain = [t[0] for t in ref_eval(formula.bound, contents, env)]
        holds = [
            ref_formula(formula.body, contents, {**env, formula.variable: atom})
            for atom in domain
        ]
        count = sum(holds)
        return {
            "all": all(holds),
            "some": any(holds),
            "no": not any(holds),
            "one": count == 1,
            "lone": count <= 1,
        }[formula.quant]
    raise TypeError(type(formula))


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
def tuple_sets(arity):
    universe_tuples = list(itertools.product(ATOMS, repeat=arity))
    return st.sets(st.sampled_from(universe_tuples), max_size=5)


@st.composite
def exprs(draw, unary, binary, depth=3, want_arity=None):
    """Random expression over fixed unary/binary relation pools."""
    if depth == 0 or draw(st.booleans()):
        if want_arity == 1 or (want_arity is None and draw(st.booleans())):
            return rast.RelationExpr(draw(st.sampled_from(unary)))
        return rast.RelationExpr(draw(st.sampled_from(binary)))
    kind = draw(
        st.sampled_from(["binary_op", "join", "product", "unary_op", "const"])
    )
    if kind == "const":
        if want_arity == 1:
            return draw(st.sampled_from([rast.NONE, rast.UNIV]))
        if want_arity == 2:
            return rast.IDEN
        return draw(st.sampled_from([rast.NONE, rast.UNIV, rast.IDEN]))
    if kind == "binary_op":
        left = draw(exprs(unary, binary, depth - 1, want_arity))
        right = draw(exprs(unary, binary, depth - 1, want_arity=left.arity))
        op = draw(st.sampled_from(["union", "intersection", "difference"]))
        return rast.BinaryExpr(op, left, right)
    if kind == "join":
        # unary.binary keeps arity predictable
        left = draw(exprs(unary, binary, depth - 1, want_arity=1))
        right = draw(exprs(unary, binary, depth - 1, want_arity=2))
        return (
            left.join(right)
            if want_arity in (1, None)
            else rast.BinaryExpr("union", right, right)
        )
    if kind == "product":
        if want_arity == 1:
            return rast.RelationExpr(draw(st.sampled_from(unary)))
        left = draw(exprs(unary, binary, depth - 1, want_arity=1))
        right = draw(exprs(unary, binary, depth - 1, want_arity=1))
        return left.product(right)
    # unary_op
    operand = draw(exprs(unary, binary, depth - 1, want_arity=2))
    op = draw(st.sampled_from(["transpose", "closure", "reflexive_closure"]))
    result = rast.UnaryExpr(op, operand)
    if want_arity == 1:
        return rast.RelationExpr(draw(st.sampled_from(unary)))
    return result


@st.composite
def problems(draw):
    unary = [Relation(f"u{i}", 1) for i in range(2)]
    binary = [Relation(f"b{i}", 2) for i in range(2)]
    contents = {}
    for rel in unary:
        contents[rel] = draw(tuple_sets(1))
    for rel in binary:
        contents[rel] = draw(tuple_sets(2))
    expr = draw(exprs(unary, binary))
    return unary, binary, contents, expr


def make_translator(unary, binary, contents):
    universe = Universe(ATOMS)
    bounds = Bounds(universe)
    for rel in unary + binary:
        bounds.bound_exact(rel, contents[rel])
    return Translator(bounds), universe


@given(problems())
@settings(max_examples=200, deadline=None)
def test_expression_semantics_match_reference(problem):
    unary, binary, contents, expr = problem
    translator, universe = make_translator(unary, binary, contents)
    matrix = translator.evaluate(expr)
    expected = ref_eval(expr, contents, {})
    actual = set()
    for key, node in matrix.entries.items():
        assert node in (ts.TRUE, ts.FALSE), "constant bounds must fold"
        if node is ts.TRUE:
            actual.add(tuple(ATOMS[i] for i in key))
    assert actual == expected


@st.composite
def formulas(draw, unary, binary, depth=2):
    kind = draw(
        st.sampled_from(["cmp", "mult", "not", "nary", "quant"])
    )
    if depth == 0:
        kind = draw(st.sampled_from(["cmp", "mult"]))
    if kind == "cmp":
        left = draw(exprs(unary, binary, depth=2))
        right = draw(exprs(unary, binary, depth=2, want_arity=left.arity))
        op = draw(st.sampled_from(["subset", "equals"]))
        return rast.ComparisonFormula(op, left, right)
    if kind == "mult":
        expr = draw(exprs(unary, binary, depth=2))
        mult = draw(st.sampled_from(["some", "no", "one", "lone"]))
        return rast.MultiplicityFormula(mult, expr)
    if kind == "not":
        return rast.NotFormula(draw(formulas(unary, binary, depth - 1)))
    if kind == "nary":
        op = draw(st.sampled_from(["and", "or"]))
        size = draw(st.integers(min_value=1, max_value=3))
        return rast.NaryFormula(
            op, [draw(formulas(unary, binary, depth - 1)) for _ in range(size)]
        )
    # quantifier over a unary expression; body mentions the variable
    var = rast.Variable(f"x{depth}")
    bound = draw(exprs(unary, binary, depth=1, want_arity=1))
    quant = draw(st.sampled_from(["all", "some", "no", "one", "lone"]))
    body_rel = rast.RelationExpr(draw(st.sampled_from(binary)))
    body_kind = draw(st.sampled_from(["member", "some_join", "eq"]))
    if body_kind == "member":
        body = var.in_(draw(exprs(unary, binary, depth=1, want_arity=1)))
    elif body_kind == "some_join":
        body = rast.some(var.join(body_rel))
    else:
        body = var.join(body_rel).eq(draw(exprs(unary, binary, depth=1, want_arity=1)))
    return rast.QuantifiedFormula(quant, var, bound, body)


@st.composite
def formula_problems(draw):
    unary = [Relation(f"u{i}", 1) for i in range(2)]
    binary = [Relation(f"b{i}", 2) for i in range(2)]
    contents = {}
    for rel in unary:
        contents[rel] = draw(tuple_sets(1))
    for rel in binary:
        contents[rel] = draw(tuple_sets(2))
    formula = draw(formulas(unary, binary))
    return unary, binary, contents, formula


@given(formula_problems())
@settings(max_examples=200, deadline=None)
def test_formula_semantics_match_reference(problem):
    unary, binary, contents, formula = problem
    translator, universe = make_translator(unary, binary, contents)
    node = translator.translate_formula(formula)
    expected = ref_formula(formula, contents, {})
    assert node in (ts.TRUE, ts.FALSE), "constant bounds must fold formulas"
    assert (node is ts.TRUE) == expected
