"""Tests for atoms, relations, and bounds."""

import pytest

from repro.relational import Universe, Relation, Bounds
from repro.relational.universe import products


class TestUniverse:
    def test_order_and_index(self):
        u = Universe(["a", "b", "c"])
        assert list(u) == ["a", "b", "c"]
        assert u.index("b") == 1
        assert len(u) == 3

    def test_duplicate_atom_rejected(self):
        u = Universe(["a"])
        with pytest.raises(ValueError):
            u.add("a")

    def test_missing_atom_lookup(self):
        u = Universe(["a"])
        with pytest.raises(KeyError):
            u.index("z")

    def test_contains(self):
        u = Universe(["a"])
        assert "a" in u
        assert "b" not in u


class TestRelation:
    def test_arity_validation(self):
        with pytest.raises(ValueError):
            Relation("r", 0)

    def test_to_expr(self):
        r = Relation("r", 2)
        assert r.to_expr().arity == 2


class TestBounds:
    def setup_method(self):
        self.u = Universe(["a", "b", "c"])
        self.b = Bounds(self.u)

    def test_exact_bound(self):
        r = Relation("r", 1)
        self.b.bound_exact(r, [("a",), ("b",)])
        assert self.b.lower(r) == self.b.upper(r) == {("a",), ("b",)}

    def test_partial_bound(self):
        r = Relation("r", 2)
        self.b.bound(r, [("a", "b")], [("a", "b"), ("b", "c")])
        assert ("a", "b") in self.b.lower(r)
        assert ("b", "c") in self.b.upper(r)
        assert ("b", "c") not in self.b.lower(r)

    def test_lower_must_be_within_upper(self):
        r = Relation("r", 1)
        with pytest.raises(ValueError):
            self.b.bound(r, [("a",)], [("b",)])

    def test_arity_mismatch_rejected(self):
        r = Relation("r", 2)
        with pytest.raises(ValueError):
            self.b.bound_exact(r, [("a",)])

    def test_unknown_atom_rejected(self):
        r = Relation("r", 1)
        with pytest.raises(KeyError):
            self.b.bound_exact(r, [("zzz",)])

    def test_relations_listing(self):
        r1, r2 = Relation("r1", 1), Relation("r2", 1)
        self.b.bound_exact(r1, [])
        self.b.bound_exact(r2, [("a",)])
        assert set(self.b.relations) == {r1, r2}
        assert r1 in self.b


def test_products_helper():
    result = products([["a", "b"], ["x"]])
    assert sorted(result) == [("a", "x"), ("b", "x")]
    assert products([]) == [()]
