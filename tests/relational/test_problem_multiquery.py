"""Edge cases for the multi-query :class:`RelationalProblem` API.

The shared-encoding engine drives one problem through many gated
queries: selectors from :meth:`add_gated_formula`, assumption-scoped
``solve``/``solutions``/``minimal_solutions``, gated ``block`` clauses,
and conflict budgets re-armed between query groups.  These tests pin the
corner cases that surface only in that regime: empty primary sets,
blocking after a budget miss, and limits interacting with assumptions.
"""

import pytest

from repro.relational import Bounds, Relation, RelationalProblem, Universe
from repro.relational import ast as rast
from repro.sat.solver import BudgetExhausted


def make_free_unary(atoms, name="r"):
    universe = Universe(atoms)
    bounds = Bounds(universe)
    r = Relation(name, 1)
    bounds.bound(r, [], [(a,) for a in atoms])
    return universe, bounds, r


class TestEmptyPrimarySet:
    """A problem whose relations are all fixed has no primary variables;
    every query path must terminate, not loop on an unblockable model."""

    def _fixed_problem(self, formula=rast.TRUE_F):
        universe = Universe(["a"])
        bounds = Bounds(universe)
        r = Relation("r", 1)
        bounds.bound_exact(r, [("a",)])
        return RelationalProblem(bounds, formula), r

    def test_solutions_yield_exactly_one(self):
        problem, r = self._fixed_problem()
        found = list(problem.solutions())
        assert len(found) == 1
        assert found[0].tuples(r) == {("a",)}

    def test_minimal_solutions_yield_exactly_one(self):
        problem, _ = self._fixed_problem()
        assert len(list(problem.minimal_solutions())) == 1

    def test_solutions_with_assumptions_and_gate(self):
        problem, _ = self._fixed_problem()
        selector = problem.add_gated_formula(rast.TRUE_F)
        found = list(
            problem.solutions(assumptions=[selector], gate=selector)
        )
        assert len(found) == 1

    def test_block_of_only_fixed_tuples_reports_exhaustion(self):
        problem, r = self._fixed_problem()
        assert problem.block([(r, ("a",))]) is False

    def test_minimal_solutions_empty_instance_terminates(self):
        _, bounds, r = make_free_unary(["a", "b"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        found = list(problem.minimal_solutions())
        # The canonical minimum is the empty instance, which subsumes
        # every other model: enumeration stops after yielding it.
        assert len(found) == 1
        assert found[0].tuples(r) == set()


class TestBudgetMiss:
    def _permutation_problem(self):
        """A SAT instance with structure: m is a bijection on 4 atoms."""
        atoms = [f"a{i}" for i in range(4)]
        universe = Universe(atoms)
        bounds = Bounds(universe)
        m = Relation("m", 2)
        rows = [(x, y) for x in atoms for y in atoms]
        bounds.bound(m, [], rows)
        dom = Relation("dom", 1)
        bounds.bound_exact(dom, [(a,) for a in atoms])
        x = rast.Variable("x")
        expr = m.to_expr()
        formula = rast.all_(
            x, dom.to_expr(), rast.one(x.join(expr))
        ) & rast.all_(x, dom.to_expr(), rast.one(expr.join(x)))
        return bounds, m, formula

    def test_budget_miss_raises_and_rearming_recovers(self):
        bounds, m, formula = self._permutation_problem()
        problem = RelationalProblem(bounds, formula)
        # A zero budget is exhausted before the first solve even starts.
        problem.conflict_budget = 0
        with pytest.raises(BudgetExhausted):
            for _ in problem.minimal_solutions():
                pass
        # Re-arm the budget (the engine's per-signature window pattern):
        # the same problem object finishes the query exactly.
        problem.conflict_budget = problem.stats.conflicts + 1_000_000
        instance = problem.minimal_solution()
        assert instance is not None
        assert len(instance.tuples(m)) == 4

    def test_blocking_still_works_after_budget_miss(self):
        bounds, m, formula = self._permutation_problem()
        problem = RelationalProblem(bounds, formula)
        problem.conflict_budget = 0
        with pytest.raises(BudgetExhausted):
            problem.minimal_solution()
        problem.conflict_budget = problem.stats.conflicts + 1_000_000
        first = problem.minimal_solution()
        assert problem.block([(m, tup) for tup in sorted(first.tuples(m))])
        second = problem.minimal_solution()
        assert second is not None
        assert second.tuples(m) != first.tuples(m)

    def test_budget_accounting_is_cumulative(self):
        bounds, _, formula = self._permutation_problem()
        problem = RelationalProblem(bounds, formula)
        problem.conflict_budget = 0
        with pytest.raises(BudgetExhausted):
            problem.minimal_solution()
        # Without re-arming, the spent budget keeps the problem closed.
        with pytest.raises(BudgetExhausted):
            problem.minimal_solution()


class TestLimitsWithAssumptions:
    def test_limit_respected_under_assumptions(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        selector = problem.add_gated_formula(rast.some(r.to_expr()))
        found = list(
            problem.solutions(
                limit=2, assumptions=[selector], gate=selector
            )
        )
        assert len(found) == 2
        for instance in found:
            assert len(instance.tuples(r)) >= 1

    def test_gated_blocking_does_not_leak_across_groups(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        sel_some = problem.add_gated_formula(rast.some(r.to_expr()))
        sel_all = problem.add_gated_formula(rast.TRUE_F)
        # Exhaust the `some` group completely (7 non-empty subsets)...
        exhausted = list(
            problem.solutions(assumptions=[sel_some], gate=sel_some)
        )
        assert len(exhausted) == 7
        # ...the other group still sees its full model space (8 subsets).
        remaining = list(
            problem.solutions(assumptions=[sel_all, -sel_some], gate=sel_all)
        )
        assert len(remaining) == 8

    def test_mutually_exclusive_selectors(self):
        _, bounds, r = make_free_unary(["a", "b"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        sel_some = problem.add_gated_formula(rast.some(r.to_expr()))
        sel_none = problem.add_gated_formula(rast.no(r.to_expr()))
        with_some = problem.solve(assumptions=[sel_some, -sel_none])
        assert with_some is not None and len(with_some.tuples(r)) >= 1
        with_none = problem.solve(assumptions=[sel_none, -sel_some])
        assert with_none is not None and with_none.tuples(r) == set()
        # Both at once is a contradiction -- and it must not poison the
        # solver for the next query.
        assert problem.solve(assumptions=[sel_some, sel_none]) is None
        assert problem.solve(assumptions=[sel_some, -sel_none]) is not None

    def test_minimal_solutions_limit_under_assumptions(self):
        _, bounds, r = make_free_unary(["a", "b", "c"])
        problem = RelationalProblem(bounds, rast.TRUE_F)
        selector = problem.add_gated_formula(rast.some(r.to_expr()))
        found = list(
            problem.minimal_solutions(
                limit=2, assumptions=[selector], gate=selector
            )
        )
        # Minimal models under `some r` are the three singletons; the
        # limit cuts the canonical enumeration to the first two.
        assert len(found) == 2
        for instance in found:
            assert len(instance.tuples(r)) == 1
