"""Property test: Aluminum-style minimal enumeration against brute force.

For random small relational problems, ``minimal_solutions`` must yield
exactly the set-inclusion-minimal models of the formula, each exactly
once -- the defining property of Aluminum's principled scenario
exploration.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.relational import Universe, Relation, Bounds, RelationalProblem
from repro.relational import ast as rast

ATOMS = ["a", "b", "c", "d"]


@st.composite
def problems(draw):
    """A free unary relation constrained by a random monotone-ish formula
    built from membership tests of individual atoms."""
    r = Relation("r", 1)
    singles = {atom: Relation(f"s_{atom}", 1) for atom in ATOMS}

    def literal():
        atom = draw(st.sampled_from(ATOMS))
        member = rast.some(singles[atom].to_expr() & r.to_expr())
        return atom, member

    def clause():
        size = draw(st.integers(min_value=1, max_value=3))
        atoms, members = zip(*[literal() for _ in range(size)])
        return set(atoms), rast.or_all(members)

    n_clauses = draw(st.integers(min_value=1, max_value=4))
    clauses = [clause() for _ in range(n_clauses)]
    formula = rast.and_all([c[1] for c in clauses])
    sem_clauses = [c[0] for c in clauses]
    return formula, sem_clauses, r, singles


def brute_force_minimal(sem_clauses):
    """All inclusion-minimal subsets of ATOMS hitting every clause."""
    satisfying = []
    for bits in itertools.product([False, True], repeat=len(ATOMS)):
        chosen = {a for a, b in zip(ATOMS, bits) if b}
        if all(chosen & clause for clause in sem_clauses):
            satisfying.append(frozenset(chosen))
    minimal = [
        s for s in satisfying
        if not any(other < s for other in satisfying)
    ]
    return set(minimal)


@given(problems())
@settings(max_examples=60, deadline=None)
def test_minimal_solutions_match_brute_force(problem):
    formula, sem_clauses, r, singles = problem
    universe = Universe(ATOMS)
    bounds = Bounds(universe)
    bounds.bound(r, [], [(a,) for a in ATOMS])
    for atom, rel in singles.items():
        bounds.bound_exact(rel, [(atom,)])
    rel_problem = RelationalProblem(bounds, formula)
    found = [frozenset(inst.atoms(r)) for inst in rel_problem.minimal_solutions()]
    assert len(found) == len(set(found)), "a minimal model repeated"
    assert set(found) == brute_force_minimal(sem_clauses)


@given(problems())
@settings(max_examples=30, deadline=None)
def test_every_solution_extends_some_minimal(problem):
    """Completeness of minimization: every full model is a superset of a
    reported minimal model."""
    formula, sem_clauses, r, singles = problem
    universe = Universe(ATOMS)

    def fresh():
        bounds = Bounds(universe)
        bounds.bound(r, [], [(a,) for a in ATOMS])
        for atom, rel in singles.items():
            bounds.bound_exact(rel, [(atom,)])
        return RelationalProblem(bounds, formula)

    minima = [frozenset(i.atoms(r)) for i in fresh().minimal_solutions()]
    for instance in fresh().solutions():
        model = frozenset(instance.atoms(r))
        assert any(m <= model for m in minima)
